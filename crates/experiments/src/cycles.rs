//! Rolling-horizon operation: consecutive Video-On-Reservation cycles.
//!
//! The paper schedules one cycle's request batch in isolation; a deployed
//! service runs cycle after cycle, and copies cached late in cycle `k`
//! are still draining when cycle `k+1` starts. This module simulates `N`
//! consecutive cycles: each cycle's batch is scheduled with the sharded
//! two-phase pipeline, overflow resolution seeded with the residual
//! occupancy of every earlier cycle, so capacity commitments carry
//! across the cycle boundary exactly as they would on real disks.
//!
//! The default configuration runs **warm**: one [`WarmState`] survives
//! the whole run, carrying the committed-occupancy ledger (maintained
//! incrementally instead of being rebuilt from an ever-growing flat
//! profile list), the SORP trial cache, and the phase-1 pricing memos
//! across cycle boundaries. [`RollingConfig::use_cold_start`] keeps the
//! from-scratch pipeline as the equivalence oracle — per-cycle Ψ agrees
//! within 1e-9 relative, asserted in this module's tests, the
//! `warm_start_props` suite, and the `cycles_warm` bench — and
//! [`SorpConfig::use_monolithic_solver`] recovers the original
//! single-solver loop below both. [`RollingConfig::adaptive`] additionally
//! lets the warm state's calibration-driven [`vod_core::ShardSelector`]
//! pick the shard count per cycle from the batch size and populated
//! region count, refined online from each cycle's measured wall-clock;
//! it is off by default because feeding measured time back into the
//! decision makes the pick (not the per-pick arithmetic) vary across
//! machines, and the default configuration promises run-to-run
//! bit-stability.

use crate::EnvParams;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;
use vod_core::{
    detect_overflows, shard_solve_seeded, shard_solve_warm, ExecMode, SchedCtx, ServiceCycleStats,
    ShardConfig, SorpOutcome, StorageLedger, WarmState, WarmStats, EXTERNAL_OCCUPANCY,
};
use vod_cost_model::{CostModel, Request, RequestBatch, SpaceProfile};
use vod_topology::{units, NodeId};
use vod_workload::{
    generate_catalog, generate_regional_requests, generate_requests, populated_regions,
    CatalogConfig, RequestConfig,
};

/// Configuration of a rolling-horizon run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RollingConfig {
    /// The sharded-solver configuration every cycle runs under. Its
    /// [`vod_core::SorpConfig::use_monolithic_solver`] flag selects the
    /// single-solver oracle exactly as in [`vod_core::shard_solve`].
    pub shard: ShardConfig,
    /// Re-solve every cycle from scratch (the original pipeline): cold
    /// caches, and the committed occupancy re-seeded from the flat
    /// profile list. The warm path must match its per-cycle Ψ within
    /// 1e-9 relative.
    pub use_cold_start: bool,
    /// Let the warm state's [`vod_core::ShardSelector`] pick
    /// `shard.shards` per cycle and refine itself from measured
    /// wall-clock. Ignored on the cold path (there is no carried
    /// selector to refine). Off by default: the feedback loop is
    /// deterministic *given* the table, but the table absorbs measured
    /// time, so picks vary across machines and runs.
    pub adaptive: bool,
    /// Draw each cycle's workload from
    /// [`vod_workload::generate_regional_requests`] (every video
    /// requested from a single neighborhood) instead of the paper
    /// workload — the regime in which sharded Ψ provably matches the
    /// monolith, used by the bench oracles.
    pub regional: bool,
}

impl RollingConfig {
    /// The cold-start oracle for this configuration: identical in every
    /// respect except solving from scratch.
    pub fn cold(&self) -> Self {
        Self { use_cold_start: true, adaptive: false, ..self.clone() }
    }
}

/// Per-cycle report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CycleReport {
    /// Cycle index (0-based).
    pub cycle: usize,
    /// Requests served this cycle.
    pub requests: usize,
    /// Ψ of this cycle's resolved schedule.
    pub cost: f64,
    /// Relative cost increase from overflow resolution this cycle.
    pub rel_increase: f64,
    /// Victims rescheduled this cycle.
    pub victims: usize,
    /// Space still occupied by earlier cycles at this cycle's start, GB.
    pub spillover_gb: f64,
    /// Whether every overflow was resolved (false only if spillover alone
    /// over-commits a storage).
    pub overflow_free: bool,
    /// Wall-clock of the whole cycle (workload generation / intake,
    /// solve, repair, commit), nanoseconds. `warm.solve_ns` is the
    /// solver-only share.
    pub wall_ns: u64,
    /// Warm-start accounting for the cycle. On the cold path only
    /// `shards_used`, `spillover_bytes`, and `solve_ns` are populated
    /// (there is no carried state to count).
    pub warm: WarmStats,
    /// Service-frontend accounting, populated only by
    /// [`crate::service::service_horizon`] (rolling-horizon runs have no
    /// intake layer).
    pub service: Option<ServiceCycleStats>,
}

/// Result of a rolling-horizon run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RollingOutcome {
    /// One report per cycle.
    pub cycles: Vec<CycleReport>,
}

impl RollingOutcome {
    /// Total cost across cycles.
    pub fn total_cost(&self) -> f64 {
        self.cycles.iter().map(|c| c.cost).sum()
    }

    /// Total solve wall-clock across cycles, nanoseconds.
    pub fn total_solve_ns(&self) -> u64 {
        self.cycles.iter().map(|c| c.warm.solve_ns).sum()
    }

    /// Render as an aligned table. Every cycle gets a row — including
    /// idle ones with zero requests (the service loop's idle ticks) —
    /// with per-cycle solve and wall time in milliseconds. Runs that
    /// carry service-frontend stats gain a trailing rung/shed section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Rolling-horizon operation ({} cycles)", self.cycles.len());
        let with_service = self.cycles.iter().any(|c| c.service.is_some());
        let _ = write!(
            out,
            "{:>7}{:>10}{:>14}{:>10}{:>10}{:>14}{:>8}{:>8}{:>11}{:>10}{:>7}",
            "cycle",
            "requests",
            "cost $",
            "+res%",
            "victims",
            "spillover GB",
            "shards",
            "hits",
            "solve ms",
            "wall ms",
            "clean"
        );
        if with_service {
            let _ =
                write!(out, "{:>9}{:>7}{:>7}{:>7}{:>7}", "rung", "shed", "defer", "drop", "queue");
        }
        let _ = writeln!(out);
        for c in &self.cycles {
            let _ = write!(
                out,
                "{:>7}{:>10}{:>14.0}{:>9.1}%{:>10}{:>14.2}{:>8}{:>8}{:>11.2}{:>10.2}{:>7}",
                c.cycle,
                c.requests,
                c.cost,
                100.0 * c.rel_increase,
                c.victims,
                c.spillover_gb,
                c.warm.shards_used,
                c.warm.trials_hit + c.warm.phase1_hits,
                c.warm.solve_ns as f64 / 1e6,
                c.wall_ns as f64 / 1e6,
                if c.overflow_free { "yes" } else { "NO" }
            );
            if with_service {
                match &c.service {
                    Some(s) => {
                        let _ = write!(
                            out,
                            "{:>9}{:>7}{:>7}{:>7}{:>7}",
                            s.rung.label(),
                            s.shed,
                            s.deferred,
                            s.dropped,
                            s.queue_depth
                        );
                    }
                    None => {
                        let _ = write!(out, "{:>9}{:>7}{:>7}{:>7}{:>7}", "-", "-", "-", "-", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "total: ${:.0}", self.total_cost());
        out
    }
}

/// Run `n_cycles` consecutive cycles of the given environment under the
/// default configuration: warm-started, four region shards, paper
/// workload. Cycle `k`'s reservations fall in `[k·H, (k+1)·H)`
/// (H = 24 h); the workload differs per cycle (seed offset) but the
/// environment stays fixed.
pub fn rolling_horizon(params: &EnvParams, n_cycles: usize) -> RollingOutcome {
    rolling_horizon_with(params, n_cycles, &RollingConfig::default())
}

/// [`rolling_horizon`] under an explicit configuration.
pub fn rolling_horizon_with(
    params: &EnvParams,
    n_cycles: usize,
    cfg: &RollingConfig,
) -> RollingOutcome {
    rolling_horizon_recorded(params, n_cycles, cfg, &vod_obs::Recorder::disabled())
}

/// [`rolling_horizon_with`] with a telemetry recorder attached: shard
/// solves, warm-start stats, and — under `cfg.adaptive` — the
/// `ShardSelector`'s picks and (wall-clock) fit observations all land in
/// the recording, scoped per cycle in simulated time.
pub fn rolling_horizon_recorded(
    params: &EnvParams,
    n_cycles: usize,
    cfg: &RollingConfig,
    recorder: &vod_obs::Recorder,
) -> RollingOutcome {
    assert!(n_cycles >= 1, "need at least one cycle");
    let (topo, _) = params.build();
    let catalog_cfg = CatalogConfig { videos: params.videos, ..CatalogConfig::paper() };
    let catalog = generate_catalog(&catalog_cfg, params.seed ^ 0xCA7A_10C0_FFEE_0001);
    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &catalog).with_recorder(recorder.clone());
    let horizon = 24.0 * 3_600.0;

    let mut warm = WarmState::new(&topo);
    let mut committed: Vec<(NodeId, SpaceProfile)> = Vec::new();
    let mut cycles = Vec::with_capacity(n_cycles);

    for k in 0..n_cycles {
        let cycle_started = Instant::now();
        // Fresh reservations for this cycle, shifted onto its window.
        let request_cfg = RequestConfig {
            requests_per_user: params.requests_per_user,
            ..RequestConfig::with_alpha(params.zipf_alpha)
        };
        let seed = params.seed ^ (k as u64 + 1);
        let raw = if cfg.regional {
            generate_regional_requests(&topo, &catalog, &request_cfg, seed)
        } else {
            generate_requests(&topo, &catalog, &request_cfg, seed)
        };
        let shifted: Vec<Request> =
            raw.iter().map(|r| Request { start: r.start + k as f64 * horizon, ..*r }).collect();
        let batch = RequestBatch::new(shifted);
        let t0 = k as f64 * horizon;
        ctx.recorder.begin_cycle(k as u64, t0);

        let mut shard_cfg = cfg.shard.clone();
        if cfg.adaptive && !cfg.use_cold_start {
            shard_cfg.shards = warm.selector.pick_recorded(
                batch.len(),
                populated_regions(&topo, &batch),
                &ctx.recorder,
            );
        }

        let started = Instant::now();
        let (outcome, mut warm_stats) = if cfg.use_cold_start {
            let out = shard_solve_seeded(&ctx, &batch, &shard_cfg, &committed, ExecMode::default());
            let spillover_bytes: f64 =
                committed.iter().map(|(_, p)| p.space_at(t0)).sum::<f64>().max(0.0);
            let stats =
                WarmStats { shards_used: out.shards, spillover_bytes, ..WarmStats::default() };
            (out, stats)
        } else {
            let out =
                shard_solve_warm(&ctx, &batch, &shard_cfg, &mut warm, t0, ExecMode::default());
            (out, warm.stats.clone())
        };
        let solve_ns = started.elapsed().as_nanos() as u64;
        warm_stats.solve_ns = solve_ns;
        warm_stats.record(&ctx.recorder);

        if cfg.adaptive && !cfg.use_cold_start {
            warm.selector.observe_recorded(
                batch.len(),
                warm_stats.shards_used,
                solve_ns as f64,
                outcome.reconcile_iterations as f64,
                &ctx.recorder,
            );
        }

        if cfg.use_cold_start {
            // Commit this cycle's residencies for the cycles to come.
            for r in outcome.sorp.schedule.residencies() {
                let p = r.profile(catalog.get(r.video));
                if p.peak() > 0.0 {
                    committed.push((r.loc, p));
                }
            }
        }
        // The warm path's commitments live inside `warm`'s committed
        // book, absorbed by `shard_solve_warm` itself.

        let mut report = report_for(k, &batch, &outcome.sorp, &warm_stats, outcome.shards);
        report.wall_ns = cycle_started.elapsed().as_nanos() as u64;
        cycles.push(report);
    }
    RollingOutcome { cycles }
}

pub(crate) fn report_for(
    cycle: usize,
    batch: &RequestBatch,
    sorp: &SorpOutcome,
    warm: &WarmStats,
    shards: usize,
) -> CycleReport {
    let mut warm = warm.clone();
    warm.shards_used = shards;
    CycleReport {
        cycle,
        requests: batch.len(),
        cost: sorp.cost,
        rel_increase: sorp.relative_cost_increase(),
        victims: sorp.victims.len(),
        spillover_gb: warm.spillover_bytes / units::GB,
        overflow_free: sorp.overflow_free,
        wall_ns: 0,
        warm,
        service: None,
    }
}

/// Verify (for tests) that the union of all cycles' commitments never
/// over-commits a storage.
pub fn committed_is_feasible(
    params: &EnvParams,
    outcome_committed: &[(NodeId, SpaceProfile)],
) -> bool {
    let (topo, _) = params.build();
    let mut ledger = StorageLedger::new(&topo);
    for (loc, p) in outcome_committed {
        ledger.add(*loc, EXTERNAL_OCCUPANCY, *p);
    }
    detect_overflows(&topo, &ledger).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_core::{ivsp_solve_priced, sorp_solve_priced, SorpConfig};

    fn cheap_params() -> EnvParams {
        EnvParams { videos: 50, users_per_neighborhood: 4, ..EnvParams::fast() }
    }

    fn assert_psi_close(a: &RollingOutcome, b: &RollingOutcome, what: &str) {
        assert_eq!(a.cycles.len(), b.cycles.len());
        for (x, y) in a.cycles.iter().zip(&b.cycles) {
            let rel = (x.cost - y.cost).abs() / y.cost.max(1.0);
            assert!(
                rel <= 1e-9,
                "{what}: cycle {} Ψ {} vs oracle {} (rel {rel:e})",
                x.cycle,
                x.cost,
                y.cost
            );
        }
    }

    #[test]
    fn three_cycles_run_cleanly() {
        let out = rolling_horizon(&cheap_params(), 3);
        assert_eq!(out.cycles.len(), 3);
        for c in &out.cycles {
            assert!(c.cost > 0.0);
            assert!(c.overflow_free, "cycle {} left an overflow", c.cycle);
            assert!(c.requests > 0);
        }
        // Spillover starts at zero and is non-negative afterwards.
        assert_eq!(out.cycles[0].spillover_gb, 0.0);
        for c in &out.cycles[1..] {
            assert!(c.spillover_gb >= 0.0);
        }
        assert!(out.total_cost() > out.cycles[0].cost);
    }

    #[test]
    fn rolling_horizon_is_deterministic() {
        let a = rolling_horizon(&cheap_params(), 2);
        let b = rolling_horizon(&cheap_params(), 2);
        for (x, y) in a.cycles.iter().zip(&b.cycles) {
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.victims, y.victims);
        }
    }

    #[test]
    fn warm_psi_matches_cold_oracle_per_cycle() {
        let params = cheap_params();
        let cfg = RollingConfig::default();
        let warm = rolling_horizon_with(&params, 4, &cfg);
        let cold = rolling_horizon_with(&params, 4, &cfg.cold());
        assert_psi_close(&warm, &cold, "warm sharded vs cold sharded");
        // The same equivalence below the monolithic solver.
        let mono = RollingConfig {
            shard: ShardConfig {
                sorp: SorpConfig { use_monolithic_solver: true, ..SorpConfig::default() },
                ..ShardConfig::default()
            },
            ..RollingConfig::default()
        };
        let warm_mono = rolling_horizon_with(&params, 3, &mono);
        let cold_mono = rolling_horizon_with(&params, 3, &mono.cold());
        assert_psi_close(&warm_mono, &cold_mono, "warm monolithic vs cold monolithic");
    }

    #[test]
    fn cold_monolithic_matches_the_legacy_loop() {
        // The cold monolithic configuration must reproduce the original
        // rolling-horizon implementation (ivsp + sorp_solve_priced with
        // the flat committed list) bit for bit.
        let params = cheap_params();
        let mono = RollingConfig {
            shard: ShardConfig {
                sorp: SorpConfig { use_monolithic_solver: true, ..SorpConfig::default() },
                ..ShardConfig::default()
            },
            use_cold_start: true,
            ..RollingConfig::default()
        };
        let ours = rolling_horizon_with(&params, 3, &mono);

        let (topo, _) = params.build();
        let catalog = generate_catalog(
            &CatalogConfig { videos: params.videos, ..CatalogConfig::paper() },
            params.seed ^ 0xCA7A_10C0_FFEE_0001,
        );
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let horizon = 24.0 * 3_600.0;
        let mut committed: Vec<(NodeId, SpaceProfile)> = Vec::new();
        for k in 0..3usize {
            let cfg = RequestConfig {
                requests_per_user: params.requests_per_user,
                ..RequestConfig::with_alpha(params.zipf_alpha)
            };
            let raw = generate_requests(&topo, &catalog, &cfg, params.seed ^ (k as u64 + 1));
            let shifted: Vec<Request> =
                raw.iter().map(|r| Request { start: r.start + k as f64 * horizon, ..*r }).collect();
            let batch = RequestBatch::new(shifted);
            let out = sorp_solve_priced(
                &ctx,
                ivsp_solve_priced(&ctx, &batch),
                &SorpConfig::default(),
                &committed,
                ExecMode::default(),
            );
            assert_eq!(ours.cycles[k].cost.to_bits(), out.cost.to_bits(), "cycle {k}");
            assert_eq!(ours.cycles[k].victims, out.victims.len());
            for r in out.schedule.residencies() {
                let p = r.profile(catalog.get(r.video));
                if p.peak() > 0.0 {
                    committed.push((r.loc, p));
                }
            }
        }
    }

    #[test]
    fn spillover_is_reported_in_gigabytes() {
        let params = cheap_params();
        let out = rolling_horizon(&params, 3);
        let capacity_budget_gb = 19.0 * params.capacity_gb; // every storage full
        let mut seen_positive = false;
        for c in &out.cycles {
            // The column is the byte counter scaled by exactly 1 GB.
            assert_eq!(c.spillover_gb, c.warm.spillover_bytes / units::GB);
            // Sanity: a GB figure fits the hardware; the raw byte count
            // (1e9× larger) could not.
            assert!(
                c.spillover_gb <= capacity_budget_gb,
                "cycle {}: {} GB exceeds the {} GB of disk that exists",
                c.cycle,
                c.spillover_gb,
                capacity_budget_gb
            );
            seen_positive |= c.spillover_gb > 0.0;
        }
        assert!(seen_positive, "no cycle saw spillover; the unit check never engaged");
    }

    #[test]
    fn adaptive_run_is_clean_and_bounded() {
        let params = cheap_params();
        let cfg = RollingConfig { adaptive: true, ..RollingConfig::default() };
        let out = rolling_horizon_with(&params, 3, &cfg);
        for c in &out.cycles {
            assert!(c.overflow_free);
            assert!(
                (1..=19).contains(&c.warm.shards_used),
                "cycle {} used {} shards",
                c.cycle,
                c.warm.shards_used
            );
        }
    }

    #[test]
    fn warm_stats_account_for_carried_state() {
        let params = cheap_params();
        let out = rolling_horizon(&params, 3);
        // Cycle 0 starts empty.
        assert_eq!(out.cycles[0].warm.trials_carried, 0);
        assert_eq!(out.cycles[0].warm.committed_active, out.cycles[0].warm.committed_evicted);
        // Later cycles carry committed occupancy; within the 24 h horizon
        // nothing has fully drained yet, so the book only grows.
        for c in &out.cycles[1..] {
            assert!(c.warm.committed_active > 0, "cycle {} carried no occupancy", c.cycle);
        }
    }

    #[test]
    fn combined_occupancy_respects_capacity_across_cycles() {
        let params = cheap_params();
        let (topo, _) = params.build();
        let catalog = generate_catalog(
            &CatalogConfig { videos: params.videos, ..CatalogConfig::paper() },
            params.seed ^ 0xCA7A_10C0_FFEE_0001,
        );
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let horizon = 24.0 * 3_600.0;

        // Re-run the rolling logic, collecting every commitment.
        let mut committed: Vec<(NodeId, SpaceProfile)> = Vec::new();
        for k in 0..3usize {
            let cfg = RequestConfig {
                requests_per_user: params.requests_per_user,
                ..RequestConfig::with_alpha(params.zipf_alpha)
            };
            let raw = generate_requests(&topo, &catalog, &cfg, params.seed ^ (k as u64 + 1));
            let shifted: Vec<Request> =
                raw.iter().map(|r| Request { start: r.start + k as f64 * horizon, ..*r }).collect();
            let batch = RequestBatch::new(shifted);
            let out = sorp_solve_priced(
                &ctx,
                ivsp_solve_priced(&ctx, &batch),
                &SorpConfig::default(),
                &committed,
                ExecMode::default(),
            );
            assert!(out.overflow_free);
            for r in out.schedule.residencies() {
                let p = r.profile(catalog.get(r.video));
                if p.peak() > 0.0 {
                    committed.push((r.loc, p));
                }
            }
        }
        assert!(committed_is_feasible(&params, &committed));
    }

    #[test]
    fn per_cycle_times_are_reported_in_stable_units() {
        let out = rolling_horizon(&cheap_params(), 2);
        for c in &out.cycles {
            assert!(c.wall_ns >= c.warm.solve_ns, "wall time must contain the solve");
            assert!(c.wall_ns > 0, "cycle {} reported no wall time", c.cycle);
            assert!(c.service.is_none(), "rolling runs have no intake layer");
        }
        let text = out.render();
        assert!(text.contains("solve ms") && text.contains("wall ms"));
        assert!(!text.contains("rung"), "no service column without service stats");
    }

    #[test]
    fn render_has_one_row_per_cycle() {
        let out = rolling_horizon(&cheap_params(), 2);
        let text = out.render();
        assert!(text.contains("cycle"));
        assert_eq!(
            text.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count(),
            2
        );
    }
}
