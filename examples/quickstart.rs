//! Quickstart: the paper's Fig. 2 worked example, then a full two-phase
//! scheduling run on the paper's 20-node evaluation network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vod_paradigm::core::{ivsp_solve, sorp_solve, SchedCtx, SorpConfig};
use vod_paradigm::prelude::*;
use vod_paradigm::simulator::{simulate, SimOptions};
use vod_paradigm::workload::{CatalogConfig, RequestConfig, Workload};

fn main() {
    fig2_worked_example();
    full_pipeline();
}

/// Reproduce §3.2's hand-enumerated schedules S1 and S2 and let the greedy
/// do better.
fn fig2_worked_example() {
    println!("=== Fig. 2 worked example ===");
    // VW —(0.2¢/Mbps·s ≡ $16/GB)— IS1 —(0.1¢ ≡ $8/GB)— IS2,
    // storage $1/(GB·h), one 90-min 2.5 GB video at 6 Mbps.
    let topo = builders::paper_fig2(16.0, 8.0, 1.0, 5.0);
    let routes = RouteTable::build(&topo);
    let video = Video::new(VideoId(0), units::gb(2.5), units::minutes(90.0), units::mbps(6.0));
    let catalog = Catalog::new(vec![video]);
    let model = CostModel::per_hop();

    // Requests at 1:00 pm, 2:30 pm, 4:00 pm (users U1@IS1, U2/U3@IS2).
    let requests: Vec<Request> = [(0u32, 13.0), (1, 14.5), (2, 16.0)]
        .iter()
        .map(|&(u, h)| Request { user: UserId(u), video: video.id, start: h * 3600.0 })
        .collect();

    // Schedule S1: everything straight from the warehouse.
    let vw = topo.warehouse();
    let (is1, is2) = (NodeId(1), NodeId(2));
    let mut s1 = VideoSchedule::new(video.id);
    s1.transfers.push(Transfer::for_user(&requests[0], routes.path(vw, is1)));
    s1.transfers.push(Transfer::for_user(&requests[1], routes.path(vw, is2)));
    s1.transfers.push(Transfer::for_user(&requests[2], routes.path(vw, is2)));
    println!("Psi(S1) = ${:.3}   (paper: $259.200)", model.video_schedule_cost(&topo, &video, &s1));

    // Schedule S2: IS1 caches U1's stream; U2 and U3 are served from IS1.
    let mut s2 = VideoSchedule::new(video.id);
    s2.transfers.push(Transfer::for_user(&requests[0], routes.path(vw, is1)));
    s2.transfers.push(Transfer::for_user(&requests[1], routes.path(is1, is2)));
    s2.transfers.push(Transfer::for_user(&requests[2], routes.path(is1, is2)));
    let mut copy = Residency::begin(is1, vw, requests[0]);
    copy.extend(requests[1]);
    copy.extend(requests[2]);
    s2.residencies.push(copy);
    println!("Psi(S2) = ${:.3}   (paper: $138.975)", model.video_schedule_cost(&topo, &video, &s2));

    // The greedy finds an even cheaper plan (it also caches at IS2).
    let ctx = SchedCtx::new(&topo, &model, &catalog);
    let greedy = vod_paradigm::core::find_video_schedule(&ctx, &requests);
    println!("Psi(greedy) = ${:.3}", ctx.video_cost(&greedy));
    println!();
}

/// Run the full two-phase scheduler on the paper's evaluation network and
/// validate the result in the simulator.
fn full_pipeline() {
    println!("=== Two-phase scheduling on the Fig. 4 network ===");
    let topo = builders::paper_fig4(&builders::PaperFig4Config::default());
    let wl = Workload::generate(&topo, &CatalogConfig::paper(), &RequestConfig::paper(), 1997);
    println!(
        "{} storages, {} users, {} requests over {} titles",
        topo.storage_count(),
        topo.user_count(),
        wl.requests.len(),
        wl.catalog.len()
    );

    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);

    let phase1 = ivsp_solve(&ctx, &wl.requests);
    println!("phase 1 (individual schedules): Psi = ${:.0}", ctx.schedule_cost(&phase1));

    let outcome = sorp_solve(&ctx, &phase1, &SorpConfig::default());
    println!(
        "phase 2 (overflow resolution):  Psi = ${:.0}  ({} victims, +{:.1} %)",
        outcome.cost,
        outcome.victims.len(),
        100.0 * outcome.relative_cost_increase()
    );

    let direct = vod_paradigm::core::baselines::network_only(&ctx, &wl.requests);
    println!("network-only baseline:          Psi = ${:.0}", ctx.schedule_cost(&direct));

    let report =
        simulate(&topo, &wl.catalog, &model, &outcome.schedule, &SimOptions::strict(&wl.requests));
    assert!(report.is_valid(), "violations: {:?}", report.violations);
    println!(
        "simulator: {} events, cache hit ratio {:.0} %, schedule valid",
        report.metrics.events_processed,
        100.0 * report.metrics.cache_hit_ratio()
    );
}
