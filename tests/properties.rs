//! Property-based tests over random environments, workloads, and
//! constraints: the invariants the scheduler must hold for *every* input,
//! not just the paper's evaluation points.

use proptest::prelude::*;
use vod_paradigm::core::{
    baselines, detect_overflows, ivsp_solve, ivsp_solve_priced, ivsp_solve_with_mode,
    reschedule_video, sorp_solve, sorp_solve_priced, Constraints, ExecMode, GreedyPolicy,
    HeatMetric, Interval, PricedSchedule, SchedCtx, SorpConfig, StorageLedger,
};
use vod_paradigm::prelude::*;
use vod_paradigm::simulator::{simulate, SimOptions};
use vod_paradigm::workload::{generate_requests, CatalogConfig, RequestConfig, SplitMix64, Zipf};

/// A random small service environment plus workload, fully determined by
/// the strategy's draws.
#[derive(Debug, Clone)]
struct World {
    storages: usize,
    extra_edges: usize,
    capacity_gb: f64,
    srate: f64,
    nrate: f64,
    alpha: f64,
    users: usize,
    requests_per_user: usize,
    seed: u64,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        2usize..8,
        0usize..5,
        prop_oneof![Just(4.0), Just(5.0), Just(8.0), Just(50.0)],
        0.0f64..20.0,
        1.0f64..1000.0,
        0.0f64..=1.0,
        1usize..5,
        1usize..4,
        any::<u64>(),
    )
        .prop_map(
            |(storages, extra_edges, capacity_gb, srate, nrate, alpha, users, rpu, seed)| World {
                storages,
                extra_edges,
                capacity_gb,
                srate,
                nrate,
                alpha,
                users,
                requests_per_user: rpu,
                seed,
            },
        )
}

fn build(w: &World) -> (Topology, Catalog, RequestBatch) {
    let cfg = builders::GenConfig {
        storages: w.storages,
        nrate_per_gb: w.nrate,
        srate_per_gb_hour: w.srate,
        capacity_gb: w.capacity_gb,
        users_per_neighborhood: w.users,
    };
    let topo = builders::random_connected(&cfg, w.extra_edges, w.seed);
    let catalog =
        vod_paradigm::workload::generate_catalog(&CatalogConfig::small(20), w.seed ^ 0xABCD);
    let requests = generate_requests(
        &topo,
        &catalog,
        &RequestConfig {
            zipf_alpha: w.alpha,
            requests_per_user: w.requests_per_user,
            ..RequestConfig::paper()
        },
        w.seed ^ 0x1234,
    );
    (topo, catalog, requests)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Phase 1 is never more expensive than the network-only baseline.
    #[test]
    fn greedy_never_worse_than_direct(w in world_strategy()) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let greedy = ctx.schedule_cost(&ivsp_solve(&ctx, &requests));
        let direct = ctx.schedule_cost(&baselines::network_only(&ctx, &requests));
        prop_assert!(greedy <= direct * (1.0 + 1e-9) + 1e-6);
    }

    /// Overflow resolution always terminates overflow-free, under every
    /// heat metric, and never loses a delivery.
    #[test]
    fn sorp_always_resolves(w in world_strategy()) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let phase1 = ivsp_solve(&ctx, &requests);
        for metric in HeatMetric::ALL {
            let outcome = sorp_solve(&ctx, &phase1, &SorpConfig::with_metric(metric));
            prop_assert!(outcome.overflow_free, "metric {metric}");
            prop_assert_eq!(outcome.schedule.delivery_count(), requests.len());
            let ledger = StorageLedger::from_schedule(&topo, &catalog, &outcome.schedule);
            prop_assert!(detect_overflows(&topo, &ledger).is_empty());
            // Resolution never reduces cost below the unconstrained greedy
            // by more than numerical noise.
            prop_assert!(outcome.cost >= outcome.initial_cost * (1.0 - 1e-9) - 1e-6);
        }
    }

    /// Every resolved schedule passes full simulator validation.
    #[test]
    fn resolved_schedules_simulate_cleanly(w in world_strategy()) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &requests), &SorpConfig::default());
        let report = simulate(&topo, &catalog, &model, &outcome.schedule,
                              &SimOptions::strict(&requests));
        prop_assert!(report.is_valid(), "{:?}", report.violations);
        prop_assert!((report.metrics.total_cost - outcome.cost).abs()
                     <= 1e-6 * outcome.cost.max(1.0));
    }

    /// The rejective greedy honours arbitrary forbidden windows.
    #[test]
    fn rejective_greedy_honours_forbidden_windows(
        w in world_strategy(),
        win_start in 0.0f64..86_400.0,
        win_len in 1.0f64..86_400.0,
    ) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);

        // Forbid a window at every storage.
        let window = Interval::new(win_start, win_start + win_len);
        let forbidden: Vec<(NodeId, Interval)> =
            topo.storages().map(|s| (s, window)).collect();
        let ledger = StorageLedger::new(&topo);

        for (video, group) in requests.groups() {
            let cons = Constraints {
                ledger: &ledger,
                exclude: Some(video),
                forbidden: &forbidden,
            };
            let vs = reschedule_video(&ctx, group, &cons);
            for r in &vs.residencies {
                let p = r.profile(catalog.get(r.video));
                if p.peak() > 0.0 {
                    let support = Interval::new(p.start, p.end);
                    prop_assert!(
                        !support.overlaps(&window),
                        "residency {:?} overlaps forbidden window {:?}", support, window
                    );
                }
            }
        }
    }

    /// Ψ is additive over per-video schedules and non-negative.
    #[test]
    fn cost_is_additive_and_nonnegative(w in world_strategy()) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let schedule = ivsp_solve(&ctx, &requests);
        let total = ctx.schedule_cost(&schedule);
        let sum: f64 = schedule.videos().map(|vs| ctx.video_cost(vs)).sum();
        prop_assert!(total >= 0.0);
        prop_assert!((total - sum).abs() <= 1e-9 * total.max(1.0));
    }

    /// Zipf sampling is a valid distribution for any α in range.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..600, alpha in 0.0f64..=1.0) {
        let z = Zipf::new(n, alpha);
        let sum: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        let mut rng = SplitMix64::new(42);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// The space profile's closed-form integral matches its own windowed
    /// integral over the full support, for arbitrary residencies.
    #[test]
    fn space_profile_integrals_agree(
        t_s in 0.0f64..1e5,
        dur in 0.0f64..1e5,
        size in 1.0f64..1e10,
        playback in 1.0f64..1e4,
    ) {
        use vod_paradigm::cost_model::SpaceProfile;
        let p = SpaceProfile::new(t_s, t_s + dur, size, playback);
        let full = p.integral();
        let windowed = p.integral_over(t_s - 1.0, t_s + dur + playback + 1.0);
        prop_assert!((full - windowed).abs() <= 1e-9 * full.max(1.0));
        // γ·size·(Δ + P/2) closed form.
        let gamma = (dur / playback).min(1.0);
        let expected = gamma * size * (dur + playback / 2.0);
        prop_assert!((full - expected).abs() <= 1e-9 * full.max(1.0));
    }
}

// ---------------------------------------------------------------------
// Incremental pricing & deterministic parallelism (the priced pipeline)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The running total maintained through per-victim delta commits
    /// equals a full Ψ recompute of the final resolved schedule within
    /// 1e-6 (relative), on arbitrary random workloads.
    #[test]
    fn incremental_pricing_matches_full_recompute(w in world_strategy()) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let outcome = sorp_solve_priced(
            &ctx,
            ivsp_solve_priced(&ctx, &requests),
            &SorpConfig::default(),
            &[],
            ExecMode::default(),
        );
        let full = ctx.schedule_cost(&outcome.schedule);
        prop_assert!(
            (outcome.cost - full).abs() <= 1e-6 * full.abs().max(1.0),
            "incremental Ψ {} diverged from recomputed Ψ {}",
            outcome.cost,
            full
        );
        // Phase-1 pricing itself is bit-identical to the closed form.
        let phase1 = ivsp_solve_priced(&ctx, &requests);
        prop_assert_eq!(
            phase1.total().to_bits(),
            ctx.schedule_cost(phase1.schedule()).to_bits()
        );
    }

    /// Parallel execution is bit-identical to sequential in both phases:
    /// same schedules, same victims, and the same Ψ down to the last bit.
    #[test]
    fn parallel_pipeline_is_bit_identical_to_sequential(w in world_strategy()) {
        let (topo, catalog, requests) = build(&w);
        prop_assume!(!requests.is_empty());
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);

        let seq1 = ivsp_solve_with_mode(
            &ctx, &requests, GreedyPolicy::default(), ExecMode::Sequential,
        );
        let par1 = ivsp_solve_with_mode(
            &ctx, &requests, GreedyPolicy::default(), ExecMode::Parallel,
        );
        prop_assert_eq!(&seq1, &par1);

        let cfg = SorpConfig::default();
        let seq = sorp_solve_priced(
            &ctx, PricedSchedule::price(&ctx, seq1), &cfg, &[], ExecMode::Sequential,
        );
        let par = sorp_solve_priced(
            &ctx, PricedSchedule::price(&ctx, par1), &cfg, &[], ExecMode::Parallel,
        );
        prop_assert_eq!(&seq.schedule, &par.schedule);
        prop_assert_eq!(seq.cost.to_bits(), par.cost.to_bits());
        prop_assert_eq!(seq.iterations, par.iterations);
        prop_assert_eq!(seq.victims.len(), par.victims.len());
    }
}
