//! Value-generation strategies: the sampled (non-shrinking) counterpart
//! of proptest's `Strategy` tree.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type. Unlike the real crate there is
/// no shrink tree: `Value` is the produced value itself.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the deterministic RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Mirror of `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Mirror of `proptest::strategy::Just`: always yields a clone of the
/// wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(*self.start(), *self.end())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy (mirror of
/// `proptest::arbitrary::Arbitrary`, sampling edition).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Box a strategy behind the object-safe core of [`Strategy`]; used by
/// `prop_oneof!` to mix heterogeneous strategies of one value type.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}
