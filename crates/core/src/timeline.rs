//! Incremental piecewise-linear occupancy timeline.
//!
//! The aggregate occupancy of one storage is the sum of its residencies'
//! space profiles (Eq. 6) — a piecewise-linear, right-continuous function
//! of time. This module maintains that function *incrementally* as an
//! ordered set of breakpoints carrying aggregate (Δvalue, Δslope) deltas:
//! a profile's [`vod_cost_model::BreakDelta`]s are merged in on insert and
//! subtracted out on removal, each in O(log n) per breakpoint.
//!
//! The set is stored in a deterministic treap (priorities derived from
//! the breakpoint's time bits, so the tree shape — and therefore every
//! floating-point accumulation order — is a pure function of the *set* of
//! breakpoint times, independent of insertion order). Each node carries
//! subtree sums of its deltas, which gives:
//!
//! * [`OccupancyTimeline::prefix`] — the aggregate value and slope just
//!   after any time `t`, in O(log n);
//! * [`OccupancyTimeline::visit_range`] — the breakpoints inside a query
//!   support, in O(log n + span);
//! * [`OccupancyTimeline::for_each_segment`] — one exact left-limit walk
//!   over all linear segments, in O(n), allocation-free.
//!
//! Evaluation uses the linear form `f(t) = J + S·t − W` with `J = Σ
//! jumpᵢ`, `S = Σ slopeᵢ`, `W = Σ slopeᵢ·tᵢ` over breakpoints `tᵢ ≤ t`,
//! so left limits at a breakpoint are exact (sums *excluding* that
//! breakpoint's delta) — no midpoint-reconstruction trick, no catastrophic
//! cancellation on near-vertical segments.

use vod_cost_model::{Bytes, Secs};

/// Arena index; `NIL` is the empty subtree.
type Idx = u32;
const NIL: Idx = u32::MAX;

/// Prefix sums of the delta set up to (and including) some time: the
/// aggregate occupancy at `t` is `value_at(t) = jump + slope·t − slope_t`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prefix {
    /// Σ value jumps.
    pub jump: f64,
    /// Σ slope deltas (the aggregate's current slope).
    pub slope: f64,
    /// Σ slope deltas × their breakpoint times.
    pub slope_t: f64,
}

impl Prefix {
    /// Fold one breakpoint's delta into the prefix.
    #[inline]
    fn absorb(&mut self, t: f64, jump: f64, dslope: f64) {
        self.jump += jump;
        self.slope += dslope;
        self.slope_t += dslope * t;
    }

    /// Evaluate the aggregate at `t` given these prefix sums.
    #[inline]
    pub fn value_at(&self, t: Secs) -> Bytes {
        self.jump + self.slope * t - self.slope_t
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Breakpoint time (finite by construction).
    t: f64,
    /// Heap priority, derived deterministically from `t`'s bits.
    prio: u64,
    /// Aggregate right-continuous value jump at `t`.
    jump: f64,
    /// Aggregate slope change at `t`.
    dslope: f64,
    /// How many profile breakpoints currently share this time; the node
    /// is freed when the count returns to zero, so removing the last
    /// profile leaves an exactly-empty timeline (no float residue).
    refs: u32,
    left: Idx,
    right: Idx,
    /// Subtree sums (including this node).
    agg_jump: f64,
    agg_dslope: f64,
    agg_dslope_t: f64,
}

/// The incremental occupancy timeline of one storage.
#[derive(Clone, Debug, Default)]
pub struct OccupancyTimeline {
    nodes: Vec<Node>,
    free: Vec<Idx>,
    root: Idx,
    len: usize,
    /// Mutation counter: ticks on every [`OccupancyTimeline::add`] and
    /// [`OccupancyTimeline::remove`]. Two reads of the timeline separated
    /// by an unchanged version saw the identical function (same delta
    /// set, same tree shape, same accumulation order) — the commit-delta
    /// signal behind the dirty-node overflow rescan.
    version: u64,
}

/// SplitMix64 finalizer: deterministic, well-mixed priority from the
/// time's bit pattern.
fn prio_of(t: f64) -> u64 {
    let mut z = t.to_bits().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OccupancyTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), free: Vec::new(), root: NIL, len: 0, version: 0 }
    }

    /// The mutation counter: any change to the timeline since a previous
    /// read is visible as a different version. Equal versions guarantee a
    /// bit-identical function; unequal versions are a conservative "may
    /// have changed" signal (an add/remove pair that restores the same
    /// state still ticks it twice).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of distinct breakpoint times.
    pub fn breakpoint_count(&self) -> usize {
        self.len
    }

    /// Whether the timeline holds no breakpoints.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Merge one breakpoint delta in (O(log n)).
    pub fn add(&mut self, t: Secs, jump: Bytes, dslope: f64) {
        debug_assert!(t.is_finite(), "breakpoint time must be finite, got {t}");
        self.version += 1;
        self.root = self.add_rec(self.root, t, jump, dslope);
    }

    /// Subtract one breakpoint delta out (O(log n)). Must mirror an
    /// earlier [`OccupancyTimeline::add`] with identical arguments; the
    /// breakpoint node is freed when its last contributor leaves.
    pub fn remove(&mut self, t: Secs, jump: Bytes, dslope: f64) {
        self.version += 1;
        self.root = self.remove_rec(self.root, t, jump, dslope);
    }

    /// Prefix sums over every breakpoint with time `≤ t` (O(log n)).
    /// `prefix(t).value_at(t)` is the aggregate occupancy at `t`,
    /// right-continuous like [`vod_cost_model::SpaceProfile::space_at`].
    pub fn prefix(&self, t: Secs) -> Prefix {
        let mut p = Prefix::default();
        let mut cur = self.root;
        while cur != NIL {
            let n = self.nodes[cur as usize];
            if n.t <= t {
                if n.left != NIL {
                    let l = &self.nodes[n.left as usize];
                    p.jump += l.agg_jump;
                    p.slope += l.agg_dslope;
                    p.slope_t += l.agg_dslope_t;
                }
                p.absorb(n.t, n.jump, n.dslope);
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        p
    }

    /// In-order visit of every breakpoint with time in `(a, b]`
    /// (O(log n + visited)).
    pub fn visit_range<F: FnMut(Secs, Bytes, f64)>(&self, a: Secs, b: Secs, mut f: F) {
        self.visit_range_rec(self.root, a, b, &mut f);
    }

    fn visit_range_rec<F: FnMut(Secs, Bytes, f64)>(&self, x: Idx, a: Secs, b: Secs, f: &mut F) {
        if x == NIL {
            return;
        }
        let n = self.nodes[x as usize];
        if n.t > a {
            self.visit_range_rec(n.left, a, b, f);
            if n.t <= b {
                f(n.t, n.jump, n.dslope);
            }
        }
        if n.t <= b {
            self.visit_range_rec(n.right, a, b, f);
        }
    }

    /// In-order visit of every breakpoint (O(n)).
    pub fn visit_all<F: FnMut(Secs, Bytes, f64)>(&self, mut f: F) {
        self.visit_all_rec(self.root, &mut f);
    }

    fn visit_all_rec<F: FnMut(Secs, Bytes, f64)>(&self, x: Idx, f: &mut F) {
        if x == NIL {
            return;
        }
        let n = self.nodes[x as usize];
        self.visit_all_rec(n.left, f);
        f(n.t, n.jump, n.dslope);
        self.visit_all_rec(n.right, f);
    }

    /// Walk every linear segment `[t0, t1)` of the aggregate between
    /// consecutive breakpoints, yielding `(t0, t1, u0, u1)` where `u0` is
    /// the right-continuous value at `t0` and `u1` the exact left limit
    /// at `t1` (computed from the running slope, not reconstructed from a
    /// midpoint probe). Allocation-free single pass.
    pub fn for_each_segment<F: FnMut(Secs, Secs, Bytes, Bytes)>(&self, mut f: F) {
        let mut p = Prefix::default();
        let mut prev: Option<(Secs, Bytes)> = None;
        self.visit_all(|t, jump, dslope| {
            if let Some((t0, u0)) = prev {
                f(t0, t, u0, p.value_at(t));
            }
            p.absorb(t, jump, dslope);
            prev = Some((t, p.value_at(t)));
        });
    }

    // ---- treap internals -------------------------------------------------

    fn alloc(&mut self, t: f64, jump: f64, dslope: f64) -> Idx {
        let node = Node {
            t,
            prio: prio_of(t),
            jump,
            dslope,
            refs: 1,
            left: NIL,
            right: NIL,
            agg_jump: jump,
            agg_dslope: dslope,
            agg_dslope_t: dslope * t,
        };
        self.len += 1;
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as Idx
            }
        }
    }

    /// Recompute `x`'s subtree aggregates from its children. The
    /// accumulation order is fixed by the tree shape, which is itself a
    /// pure function of the breakpoint-time set — so aggregate values are
    /// reproducible regardless of insertion order.
    fn pull(&mut self, x: Idx) {
        let (l, r) = {
            let n = &self.nodes[x as usize];
            (n.left, n.right)
        };
        let (mut j, mut s, mut w) = (0.0, 0.0, 0.0);
        if l != NIL {
            let ln = &self.nodes[l as usize];
            j += ln.agg_jump;
            s += ln.agg_dslope;
            w += ln.agg_dslope_t;
        }
        {
            let n = &self.nodes[x as usize];
            j += n.jump;
            s += n.dslope;
            w += n.dslope * n.t;
        }
        if r != NIL {
            let rn = &self.nodes[r as usize];
            j += rn.agg_jump;
            s += rn.agg_dslope;
            w += rn.agg_dslope_t;
        }
        let n = &mut self.nodes[x as usize];
        n.agg_jump = j;
        n.agg_dslope = s;
        n.agg_dslope_t = w;
    }

    fn rotate_right(&mut self, x: Idx) -> Idx {
        let l = self.nodes[x as usize].left;
        self.nodes[x as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = x;
        self.pull(x);
        self.pull(l);
        l
    }

    fn rotate_left(&mut self, x: Idx) -> Idx {
        let r = self.nodes[x as usize].right;
        self.nodes[x as usize].right = self.nodes[r as usize].left;
        self.nodes[r as usize].left = x;
        self.pull(x);
        self.pull(r);
        r
    }

    fn add_rec(&mut self, x: Idx, t: f64, jump: f64, dslope: f64) -> Idx {
        if x == NIL {
            return self.alloc(t, jump, dslope);
        }
        let nt = self.nodes[x as usize].t;
        let mut x = x;
        if t == nt {
            let n = &mut self.nodes[x as usize];
            n.jump += jump;
            n.dslope += dslope;
            n.refs += 1;
        } else if t < nt {
            let child = self.add_rec(self.nodes[x as usize].left, t, jump, dslope);
            self.nodes[x as usize].left = child;
            if self.nodes[child as usize].prio > self.nodes[x as usize].prio {
                x = self.rotate_right(x);
            }
        } else {
            let child = self.add_rec(self.nodes[x as usize].right, t, jump, dslope);
            self.nodes[x as usize].right = child;
            if self.nodes[child as usize].prio > self.nodes[x as usize].prio {
                x = self.rotate_left(x);
            }
        }
        self.pull(x);
        x
    }

    fn remove_rec(&mut self, x: Idx, t: f64, jump: f64, dslope: f64) -> Idx {
        assert!(x != NIL, "removing a breakpoint that was never added (t = {t})");
        let nt = self.nodes[x as usize].t;
        if t == nt {
            let n = &mut self.nodes[x as usize];
            n.refs -= 1;
            if n.refs == 0 {
                let (l, r) = (n.left, n.right);
                self.free.push(x);
                self.len -= 1;
                let merged = self.merge(l, r);
                return merged;
            }
            n.jump -= jump;
            n.dslope -= dslope;
        } else if t < nt {
            let child = self.remove_rec(self.nodes[x as usize].left, t, jump, dslope);
            self.nodes[x as usize].left = child;
        } else {
            let child = self.remove_rec(self.nodes[x as usize].right, t, jump, dslope);
            self.nodes[x as usize].right = child;
        }
        self.pull(x);
        x
    }

    /// Merge two treaps where every key in `a` precedes every key in `b`.
    fn merge(&mut self, a: Idx, b: Idx) -> Idx {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let m = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    /// Treap invariants (tests only): BST order on times, heap order on
    /// priorities, aggregates consistent with children.
    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(tl: &OccupancyTimeline, x: Idx, lo: f64, hi: f64, count: &mut usize) {
            if x == NIL {
                return;
            }
            *count += 1;
            let n = tl.nodes[x as usize];
            assert!(n.t > lo && n.t < hi, "BST order violated at t = {}", n.t);
            assert!(n.refs > 0);
            for c in [n.left, n.right] {
                if c != NIL {
                    assert!(tl.nodes[c as usize].prio <= n.prio, "heap order violated");
                }
            }
            let mut j = n.jump;
            let mut s = n.dslope;
            let mut w = n.dslope * n.t;
            if n.left != NIL {
                let l = tl.nodes[n.left as usize];
                j += l.agg_jump;
                s += l.agg_dslope;
                w += l.agg_dslope_t;
            }
            if n.right != NIL {
                let r = tl.nodes[n.right as usize];
                j += r.agg_jump;
                s += r.agg_dslope;
                w += r.agg_dslope_t;
            }
            // Aggregates are rebuilt with this exact expression shape, so
            // a correct tree matches to the last bit — but `pull` folds
            // left-before-self while this check folds self-first, so allow
            // rounding noise.
            let scale = 1.0 + j.abs() + w.abs();
            assert!((tl.nodes[x as usize].agg_jump - j).abs() <= 1e-9 * scale);
            assert!((tl.nodes[x as usize].agg_dslope - s).abs() <= 1e-9 * scale);
            assert!((tl.nodes[x as usize].agg_dslope_t - w).abs() <= 1e-9 * scale);
            walk(tl, n.left, lo, n.t, count);
            walk(tl, n.right, n.t, hi, count);
        }
        let mut count = 0;
        walk(self, self.root, f64::NEG_INFINITY, f64::INFINITY, &mut count);
        assert_eq!(count, self.len, "len out of sync with tree");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_cost_model::SpaceProfile;

    fn add_profile(tl: &mut OccupancyTimeline, p: &SpaceProfile) {
        for d in &p.slope_deltas() {
            tl.add(d.t, d.jump, d.slope);
        }
    }

    fn remove_profile(tl: &mut OccupancyTimeline, p: &SpaceProfile) {
        for d in &p.slope_deltas() {
            tl.remove(d.t, d.jump, d.slope);
        }
    }

    #[test]
    fn empty_timeline_reads_zero() {
        let tl = OccupancyTimeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.prefix(123.0).value_at(123.0), 0.0);
        let mut segs = 0;
        tl.for_each_segment(|_, _, _, _| segs += 1);
        assert_eq!(segs, 0);
    }

    #[test]
    fn single_profile_matches_space_at() {
        let p = SpaceProfile::new(100.0, 600.0, 1000.0, 200.0);
        let mut tl = OccupancyTimeline::new();
        add_profile(&mut tl, &p);
        tl.check_invariants();
        for t in [0.0, 99.0, 100.0, 300.0, 599.0, 650.0, 700.0, 800.0, 1e4] {
            let got = tl.prefix(t).value_at(t);
            assert!((got - p.space_at(t)).abs() < 1e-6, "t={t}: {got} vs {}", p.space_at(t));
        }
    }

    #[test]
    fn sum_of_profiles_matches_pointwise_sum() {
        let ps = [
            SpaceProfile::new(0.0, 500.0, 1000.0, 200.0),
            SpaceProfile::new(250.0, 400.0, 800.0, 300.0),
            SpaceProfile::new(600.0, 601.0, 500.0, 100.0),
        ];
        let mut tl = OccupancyTimeline::new();
        for p in &ps {
            add_profile(&mut tl, p);
        }
        tl.check_invariants();
        for t in (0..1200).map(|i| i as f64) {
            let want: f64 = ps.iter().map(|p| p.space_at(t)).sum();
            let got = tl.prefix(t).value_at(t);
            assert!((got - want).abs() < 1e-6, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn remove_restores_the_previous_function_and_empties_cleanly() {
        let a = SpaceProfile::new(0.0, 500.0, 1000.0, 200.0);
        let b = SpaceProfile::new(100.0, 300.0, 700.0, 150.0);
        let mut tl = OccupancyTimeline::new();
        add_profile(&mut tl, &a);
        add_profile(&mut tl, &b);
        remove_profile(&mut tl, &b);
        tl.check_invariants();
        for t in (0..800).map(|i| i as f64) {
            assert!((tl.prefix(t).value_at(t) - a.space_at(t)).abs() < 1e-6);
        }
        remove_profile(&mut tl, &a);
        assert!(tl.is_empty(), "all contributors removed → exactly empty");
        assert_eq!(tl.prefix(250.0).value_at(250.0), 0.0);
    }

    #[test]
    fn tree_shape_is_insertion_order_independent() {
        let ps: Vec<SpaceProfile> = (0..30)
            .map(|i| SpaceProfile::new(i as f64 * 37.5, i as f64 * 37.5 + 400.0, 1000.0, 250.0))
            .collect();
        let mut fwd = OccupancyTimeline::new();
        for p in &ps {
            add_profile(&mut fwd, p);
        }
        let mut rev = OccupancyTimeline::new();
        for p in ps.iter().rev() {
            add_profile(&mut rev, p);
        }
        fwd.check_invariants();
        rev.check_invariants();
        // Same breakpoint set → same canonical shape → identical
        // aggregate accumulation order → bit-identical evaluations.
        for t in (0..2000).map(|i| i as f64) {
            assert_eq!(
                fwd.prefix(t).value_at(t).to_bits(),
                rev.prefix(t).value_at(t).to_bits(),
                "t={t}"
            );
        }
    }

    #[test]
    fn visit_range_is_sorted_and_bounded() {
        let mut tl = OccupancyTimeline::new();
        for i in 0..50 {
            add_profile(
                &mut tl,
                &SpaceProfile::new(i as f64 * 10.0, i as f64 * 10.0 + 95.0, 100.0, 50.0),
            );
        }
        let mut seen = Vec::new();
        tl.visit_range(120.0, 260.0, |t, _, _| seen.push(t));
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "strictly sorted: {seen:?}");
        assert!(seen.iter().all(|&t| t > 120.0 && t <= 260.0), "bounded: {seen:?}");
    }

    #[test]
    fn segments_cover_consecutive_breakpoints_with_exact_left_limits() {
        let p = SpaceProfile::new(0.0, 500.0, 1000.0, 200.0);
        let mut tl = OccupancyTimeline::new();
        add_profile(&mut tl, &p);
        let mut segs = Vec::new();
        tl.for_each_segment(|t0, t1, u0, u1| segs.push((t0, t1, u0, u1)));
        // Breakpoints 0, 500, 700 → two segments.
        assert_eq!(segs.len(), 2);
        let (t0, t1, u0, u1) = segs[0];
        assert_eq!((t0, t1), (0.0, 500.0));
        assert_eq!(u0, 1000.0);
        assert_eq!(u1, 1000.0, "left limit at drain start is the plateau");
        let (_, _, v0, v1) = segs[1];
        assert_eq!(v0, 1000.0);
        assert!(v1.abs() < 1e-9, "drain closes to zero, got {v1}");
    }

    #[test]
    fn version_ticks_on_every_mutation_and_only_then() {
        let mut tl = OccupancyTimeline::new();
        assert_eq!(tl.version(), 0);
        let p = SpaceProfile::new(0.0, 500.0, 1000.0, 200.0);
        add_profile(&mut tl, &p);
        let after_add = tl.version();
        assert!(after_add > 0, "adds must tick the version");
        // Queries never tick it.
        let _ = tl.prefix(100.0).value_at(100.0);
        tl.for_each_segment(|_, _, _, _| {});
        assert_eq!(tl.version(), after_add);
        // Removing back to empty still moves the version forward: equal
        // versions mean "identical function", not the converse.
        remove_profile(&mut tl, &p);
        assert!(tl.version() > after_add);
        assert!(tl.is_empty());
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_unknown_breakpoint_panics() {
        let mut tl = OccupancyTimeline::new();
        tl.add(1.0, 5.0, 0.0);
        tl.remove(2.0, 5.0, 0.0);
    }

    #[test]
    fn heavy_churn_keeps_invariants_and_reuses_arena() {
        let ps: Vec<SpaceProfile> = (0..200)
            .map(|i| {
                let s = (i * 7919 % 86_400) as f64;
                SpaceProfile::new(s, s + 1000.0 + (i % 13) as f64 * 311.0, 2.5e9, 5400.0)
            })
            .collect();
        let mut tl = OccupancyTimeline::new();
        for p in &ps {
            add_profile(&mut tl, p);
        }
        let cap_after_fill = tl.nodes.len();
        for p in ps.iter().step_by(2) {
            remove_profile(&mut tl, p);
        }
        for p in ps.iter().step_by(2) {
            add_profile(&mut tl, p);
        }
        tl.check_invariants();
        assert_eq!(tl.nodes.len(), cap_after_fill, "arena slots are reused");
        let want: f64 = ps.iter().map(|p| p.space_at(40_000.0)).sum();
        let got = tl.prefix(40_000.0).value_at(40_000.0);
        assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
    }
}
