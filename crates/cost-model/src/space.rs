//! The residency space-occupancy function `f_c(t)` (paper Eqs. 6–7).
//!
//! A residency caches a file by copying blocks out of an on-going stream,
//! and blocks are dropped as the chronologically-last service consumes
//! them. The paper models the occupied space as
//!
//! ```text
//! f_c(t) = γ·size                     for t_s ≤ t < t_f
//!        = γ·size·(1 − (t−t_f)/P)     for t_f ≤ t < t_f + P
//!        = 0                          otherwise
//! ```
//!
//! with `γ = 1` for a *long residency* (`t_f − t_s ≥ P`: the whole file is
//! eventually on disk) and `γ = (t_f − t_s)/P` for a *short residency*
//! (loading happens at playback rate, so a stay shorter than the playback
//! length never accumulates the whole file). The same function drives both
//! the storage cost (its full integral, Eqs. 2–3) and overflow detection /
//! heat computation (its windowed integral, Eq. 5).

use crate::{Bytes, Secs};
use serde::{Deserialize, Serialize};

/// How a residency's occupancy builds up (the choice the paper leaves
/// implicit in §2.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpaceModel {
    /// The paper's model: the plateau `γ·size` is reserved instantaneously
    /// at `t_s` ("the storage space … needs to be reserved from the start
    /// of the caching"). This is what the evaluation uses.
    InstantReservation,
    /// Exact block-level accounting: blocks arrive at playback rate from
    /// `t_s` and are dropped as the last service consumes them, giving a
    /// trapezoid (linear rise, plateau, linear drain) whose full integral
    /// closes to `γ·size·(max(t_f, t_s+P) − t_s)`. Offered as an ablation;
    /// note it can charge *more* than the paper's γ-approximation for very
    /// short residencies (Δ < P/2).
    GradualFill,
}

/// Piecewise-linear space occupancy of one residency at one storage:
/// zero before `start`, linear rise to the plateau over `[start, full]`
/// (empty under [`SpaceModel::InstantReservation`]), the plateau over
/// `[full, last]`, and a linear drain to zero over `[last, end]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpaceProfile {
    /// Caching start `t_s`.
    pub start: Secs,
    /// Time the plateau is reached (`= start` for instant reservation).
    pub full: Secs,
    /// End of the plateau (start of the drain).
    pub last: Secs,
    /// End of occupancy.
    pub end: Secs,
    /// Plateau height `γ·size` in bytes.
    pub plateau: Bytes,
}

impl SpaceProfile {
    /// Build the profile for a residency `[t_s, t_f]` of a file with the
    /// given size and playback length.
    ///
    /// # Panics
    ///
    /// Panics if `t_f < t_s`, if `playback <= 0`, or if `size < 0` — those
    /// are malformed residencies, not priceable schedules.
    pub fn new(t_s: Secs, t_f: Secs, size: Bytes, playback: Secs) -> Self {
        assert!(t_f >= t_s, "residency interval reversed: [{t_s}, {t_f}]");
        assert!(playback > 0.0, "playback must be positive, got {playback}");
        assert!(size >= 0.0, "size must be non-negative, got {size}");
        let gamma = ((t_f - t_s) / playback).min(1.0);
        Self { start: t_s, full: t_s, last: t_f, end: t_f + playback, plateau: gamma * size }
    }

    /// Build a profile under an explicit [`SpaceModel`].
    ///
    /// Under [`SpaceModel::GradualFill`] the rise and drain both last
    /// `min(t_f − t_s, P)` and the plateau runs to `max(t_f, t_s + P)`
    /// (arrival continues at playback rate while the last service
    /// consumes at the same rate, holding occupancy constant).
    pub fn with_model(
        t_s: Secs,
        t_f: Secs,
        size: Bytes,
        playback: Secs,
        model: SpaceModel,
    ) -> Self {
        match model {
            SpaceModel::InstantReservation => Self::new(t_s, t_f, size, playback),
            SpaceModel::GradualFill => {
                assert!(t_f >= t_s, "residency interval reversed: [{t_s}, {t_f}]");
                assert!(playback > 0.0, "playback must be positive, got {playback}");
                assert!(size >= 0.0, "size must be non-negative, got {size}");
                let delta = t_f - t_s;
                let rise = delta.min(playback);
                let gamma = (delta / playback).min(1.0);
                let plateau_end = t_f.max(t_s + playback);
                Self {
                    start: t_s,
                    full: t_s + rise,
                    last: plateau_end,
                    end: plateau_end + rise,
                    plateau: gamma * size,
                }
            }
        }
    }

    /// The γ coefficient of Eq. 7 expressed as the plateau fraction of the
    /// full file size (`0 ≤ γ ≤ 1`).
    pub fn gamma(&self, size: Bytes) -> f64 {
        if size == 0.0 {
            0.0
        } else {
            self.plateau / size
        }
    }

    /// Space occupied at time `t` (Eq. 6, generalised to the trapezoid).
    pub fn space_at(&self, t: Secs) -> Bytes {
        if t < self.start || t >= self.end {
            0.0
        } else if t < self.full {
            self.plateau * (t - self.start) / (self.full - self.start)
        } else if t < self.last {
            self.plateau
        } else {
            let drain = self.end - self.last;
            // Clamp: floating point can push the ramp a hair below zero
            // right at the support boundary.
            (self.plateau * (1.0 - (t - self.last) / drain)).max(0.0)
        }
    }

    /// Peak space requirement (the plateau height; for a degenerate
    /// single-service residency this is 0 — a pure relay holds no blocks).
    #[inline]
    pub fn peak(&self) -> Bytes {
        self.plateau
    }

    /// Full time-space integral `∫ f_c(t) dt` in byte·seconds. Closed
    /// form: `γ·size·((t_f − t_s) + P/2)` — exactly the bracketed factor of
    /// the paper's Eqs. 2 and 3.
    pub fn integral(&self) -> f64 {
        let rise = self.full - self.start;
        let drain = self.end - self.last;
        self.plateau * ((self.last - self.full) + rise / 2.0 + drain / 2.0)
    }

    /// Windowed time-space integral `∫_a^b f_c(t) dt` (paper Eq. 5, the ΔS
    /// numerator of the heat metrics). `a > b` yields 0.
    pub fn integral_over(&self, a: Secs, b: Secs) -> f64 {
        if b <= a {
            return 0.0;
        }
        // Rise segment [start, full]: f(t) = plateau · (t − start)/rise.
        let rise_part = {
            let ra = a.max(self.start);
            let rb = b.min(self.full);
            if rb > ra {
                let rise = self.full - self.start;
                let u0 = ra - self.start;
                let u1 = rb - self.start;
                self.plateau * (u1 * u1 - u0 * u0) / (2.0 * rise)
            } else {
                0.0
            }
        };

        // Plateau segment [full, last].
        let pa = a.max(self.full);
        let pb = b.min(self.last);
        let plateau_part = if pb > pa { self.plateau * (pb - pa) } else { 0.0 };

        // Drain segment [last, end]: f(t) = plateau · (1 − (t − last)/drain).
        let ra = a.max(self.last);
        let rb = b.min(self.end);
        let ramp_part = if rb > ra {
            let drain = self.end - self.last;
            let u0 = ra - self.last;
            let u1 = rb - self.last;
            self.plateau * ((u1 - u0) - (u1 * u1 - u0 * u0) / (2.0 * drain))
        } else {
            0.0
        };

        rise_part + plateau_part + ramp_part
    }

    /// The times at which the profile's slope changes. Between consecutive
    /// breakpoints (of the union of all profiles) the aggregate storage
    /// occupancy is linear, which is what the overflow detector exploits.
    pub fn breakpoints(&self) -> [Secs; 4] {
        [self.start, self.full, self.last, self.end]
    }

    /// The profile decomposed into (Δvalue, Δslope) deltas at its
    /// breakpoints: summing `jump + slope · (t − delta.t)` over every
    /// delta with `delta.t ≤ t` reproduces [`SpaceProfile::space_at`].
    ///
    /// This is the exact-slope representation the occupancy timeline
    /// aggregates: a degenerate rise (`full == start`, the paper's
    /// instant-reservation model) becomes a right-continuous value jump
    /// of the full plateau, a real rise becomes a ±slope pair, and the
    /// drain always contributes a ±slope pair at `last`/`end`. Degenerate
    /// (zero-plateau) profiles decompose into nothing. At most 4 deltas;
    /// times are non-decreasing but may repeat (e.g. `full == last`).
    pub fn slope_deltas(&self) -> BreakDeltas {
        let mut out = BreakDeltas::default();
        if self.plateau == 0.0 {
            return out;
        }
        if self.full > self.start {
            let m_rise = self.plateau / (self.full - self.start);
            out.push(BreakDelta { t: self.start, jump: 0.0, slope: m_rise });
            out.push(BreakDelta { t: self.full, jump: 0.0, slope: -m_rise });
        } else {
            out.push(BreakDelta { t: self.start, jump: self.plateau, slope: 0.0 });
        }
        let m_drain = self.plateau / (self.end - self.last);
        out.push(BreakDelta { t: self.last, jump: 0.0, slope: -m_drain });
        out.push(BreakDelta { t: self.end, jump: 0.0, slope: m_drain });
        out
    }
}

/// One breakpoint of a piecewise-linear occupancy function expressed as a
/// delta: at time `t` the function's value jumps by `jump` (it is
/// right-continuous, so the jump is included at `t` itself) and its slope
/// changes by `slope` bytes per second.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BreakDelta {
    /// Breakpoint time.
    pub t: Secs,
    /// Right-continuous value jump at `t`, in bytes.
    pub jump: Bytes,
    /// Slope change at `t`, in bytes per second.
    pub slope: f64,
}

/// Up to four [`BreakDelta`]s of one profile, in non-decreasing time
/// order, without heap allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct BreakDeltas {
    items: [BreakDelta; 4],
    len: usize,
}

impl BreakDeltas {
    fn push(&mut self, d: BreakDelta) {
        self.items[self.len] = d;
        self.len += 1;
    }

    /// The deltas as a slice.
    pub fn as_slice(&self) -> &[BreakDelta] {
        &self.items[..self.len]
    }
}

impl std::ops::Deref for BreakDeltas {
    type Target = [BreakDelta];

    fn deref(&self) -> &[BreakDelta] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a BreakDeltas {
    type Item = &'a BreakDelta;
    type IntoIter = std::slice::Iter<'a, BreakDelta>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Secs = 100.0;
    const SZ: Bytes = 1000.0;

    #[test]
    fn long_residency_plateau_is_full_size() {
        let p = SpaceProfile::new(0.0, 250.0, SZ, P);
        assert_eq!(p.plateau, SZ);
        assert_eq!(p.gamma(SZ), 1.0);
        assert_eq!(p.space_at(-1.0), 0.0);
        assert_eq!(p.space_at(0.0), SZ);
        assert_eq!(p.space_at(249.9), SZ);
        assert_eq!(p.space_at(300.0), SZ / 2.0); // halfway down the ramp
        assert_eq!(p.space_at(350.0), 0.0);
    }

    #[test]
    fn short_residency_scales_by_gamma() {
        // Δ = 40 < P = 100 → γ = 0.4.
        let p = SpaceProfile::new(10.0, 50.0, SZ, P);
        assert!((p.plateau - 400.0).abs() < 1e-12);
        assert!((p.gamma(SZ) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degenerate_residency_occupies_nothing() {
        // A single service (t_f == t_s) is a pure relay: zero space.
        let p = SpaceProfile::new(30.0, 30.0, SZ, P);
        assert_eq!(p.plateau, 0.0);
        assert_eq!(p.integral(), 0.0);
        assert_eq!(p.space_at(30.0), 0.0);
    }

    #[test]
    fn integral_closed_form_long() {
        // Eq. 2 bracket: (t_f − t_s) + P/2 = 250 + 50.
        let p = SpaceProfile::new(0.0, 250.0, SZ, P);
        assert!((p.integral() - SZ * 300.0).abs() < 1e-9);
    }

    #[test]
    fn integral_closed_form_short() {
        // γ·size·(Δ + P/2) = 0.4·1000·(40 + 50).
        let p = SpaceProfile::new(10.0, 50.0, SZ, P);
        assert!((p.integral() - 36_000.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_integral_matches_numeric_quadrature() {
        let p = SpaceProfile::new(20.0, 170.0, SZ, P);
        let windows = [(-50.0, 10.0), (0.0, 100.0), (150.0, 260.0), (-10.0, 400.0), (169.0, 171.0)];
        for (a, b) in windows {
            let analytic = p.integral_over(a, b);
            // Midpoint rule with fine steps.
            let n = 200_000;
            let h = (b - a) / n as f64;
            let numeric: f64 = (0..n).map(|i| p.space_at(a + (i as f64 + 0.5) * h) * h).sum();
            assert!(
                (analytic - numeric).abs() < SZ * (b - a) * 1e-4 + 1e-6,
                "window [{a},{b}]: analytic={analytic} numeric={numeric}"
            );
        }
    }

    #[test]
    fn windowed_integral_over_everything_equals_full_integral() {
        let p = SpaceProfile::new(5.0, 60.0, SZ, P);
        assert!((p.integral_over(-1e6, 1e6) - p.integral()).abs() < 1e-6);
    }

    #[test]
    fn windowed_integral_is_additive() {
        let p = SpaceProfile::new(0.0, 130.0, SZ, P);
        let whole = p.integral_over(0.0, 230.0);
        let parts = p.integral_over(0.0, 77.0) + p.integral_over(77.0, 230.0);
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn empty_or_reversed_window_is_zero() {
        let p = SpaceProfile::new(0.0, 130.0, SZ, P);
        assert_eq!(p.integral_over(50.0, 50.0), 0.0);
        assert_eq!(p.integral_over(60.0, 50.0), 0.0);
    }

    #[test]
    fn breakpoints_are_ordered() {
        let p = SpaceProfile::new(3.0, 9.0, SZ, P);
        let [a, b, c, d] = p.breakpoints();
        assert!(a <= b && b <= c && c <= d);
        assert_eq!(d, 9.0 + P);
    }

    #[test]
    fn gradual_fill_long_residency_is_a_trapezoid() {
        // Δ = 250 ≥ P = 100: rise [0,100], plateau [100,250], drain [250,350].
        let p = SpaceProfile::with_model(0.0, 250.0, SZ, P, SpaceModel::GradualFill);
        assert_eq!(p.full, 100.0);
        assert_eq!(p.last, 250.0);
        assert_eq!(p.end, 350.0);
        assert_eq!(p.plateau, SZ);
        assert_eq!(p.space_at(50.0), SZ / 2.0); // halfway up the rise
        assert_eq!(p.space_at(150.0), SZ);
        assert_eq!(p.space_at(300.0), SZ / 2.0);
        // Exact integral: size · Δ.
        assert!((p.integral() - SZ * 250.0).abs() < 1e-9);
    }

    #[test]
    fn gradual_fill_short_residency() {
        // Δ = 40 < P = 100: rise [10,50] to 0.4·size, plateau to
        // t_s + P = 110, drain to 150. Integral = size · Δ.
        let p = SpaceProfile::with_model(10.0, 50.0, SZ, P, SpaceModel::GradualFill);
        assert_eq!(p.full, 50.0);
        assert_eq!(p.last, 110.0);
        assert_eq!(p.end, 150.0);
        assert!((p.plateau - 400.0).abs() < 1e-12);
        assert!((p.integral() - SZ * 40.0).abs() < 1e-9);
    }

    #[test]
    fn gradual_fill_windowed_integral_matches_quadrature() {
        let p = SpaceProfile::with_model(20.0, 170.0, SZ, P, SpaceModel::GradualFill);
        for (a, b) in [(0.0, 60.0), (30.0, 200.0), (-10.0, 400.0), (115.0, 125.0)] {
            let analytic = p.integral_over(a, b);
            let n = 200_000;
            let h = (b - a) / n as f64;
            let numeric: f64 = (0..n).map(|i| p.space_at(a + (i as f64 + 0.5) * h) * h).sum();
            assert!(
                (analytic - numeric).abs() < SZ * (b - a) * 1e-4 + 1e-6,
                "window [{a},{b}]: analytic={analytic} numeric={numeric}"
            );
        }
        assert!((p.integral_over(-1e6, 1e6) - p.integral()).abs() < 1e-6);
    }

    #[test]
    fn models_agree_on_peak_but_differ_on_shape() {
        let inst = SpaceProfile::with_model(0.0, 60.0, SZ, P, SpaceModel::InstantReservation);
        let grad = SpaceProfile::with_model(0.0, 60.0, SZ, P, SpaceModel::GradualFill);
        assert_eq!(inst.peak(), grad.peak());
        // Very short residency (Δ = 60 > P/2 = 50): instant charges more.
        // γS(Δ+P/2) = 0.6·1000·110 = 66000 vs γS·P = 0.6·1000·100 = 60000.
        assert!(inst.integral() > grad.integral());
        // But at Δ = 20 < P/2 the γ-approximation undercharges:
        // 0.2·1000·70 = 14000 < 1000·20 = 20000.
        let inst2 = SpaceProfile::with_model(0.0, 20.0, SZ, P, SpaceModel::InstantReservation);
        let grad2 = SpaceProfile::with_model(0.0, 20.0, SZ, P, SpaceModel::GradualFill);
        assert!(inst2.integral() < grad2.integral());
    }

    #[test]
    fn instant_model_via_with_model_matches_new() {
        let a = SpaceProfile::new(5.0, 80.0, SZ, P);
        let b = SpaceProfile::with_model(5.0, 80.0, SZ, P, SpaceModel::InstantReservation);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "interval reversed")]
    fn reversed_interval_panics() {
        SpaceProfile::new(10.0, 5.0, SZ, P);
    }

    /// Evaluate a delta decomposition at `t` the slow way.
    fn eval_deltas(deltas: &BreakDeltas, t: Secs) -> f64 {
        deltas.iter().filter(|d| d.t <= t).map(|d| d.jump + d.slope * (t - d.t)).sum()
    }

    #[test]
    fn slope_deltas_reproduce_space_at_instant() {
        let p = SpaceProfile::new(0.0, 250.0, SZ, P);
        let d = p.slope_deltas();
        assert_eq!(d.len(), 3, "instant reservation: jump + drain pair");
        assert_eq!(d[0], BreakDelta { t: 0.0, jump: SZ, slope: 0.0 });
        for t in [-5.0, 0.0, 100.0, 249.0, 250.0, 300.0, 350.0, 400.0] {
            assert!(
                (eval_deltas(&d, t) - p.space_at(t)).abs() < 1e-9 * SZ,
                "t={t}: deltas {} vs space_at {}",
                eval_deltas(&d, t),
                p.space_at(t)
            );
        }
    }

    #[test]
    fn slope_deltas_reproduce_space_at_gradual() {
        let p = SpaceProfile::with_model(20.0, 170.0, SZ, P, SpaceModel::GradualFill);
        let d = p.slope_deltas();
        assert_eq!(d.len(), 4, "gradual fill: rise pair + drain pair");
        for t in [0.0, 20.0, 60.0, 120.0, 170.0, 200.0, 270.0, 300.0] {
            assert!(
                (eval_deltas(&d, t) - p.space_at(t)).abs() < 1e-9 * SZ,
                "t={t}: deltas {} vs space_at {}",
                eval_deltas(&d, t),
                p.space_at(t)
            );
        }
        // Past the support the deltas cancel to ~0 (exact cancellation of
        // the ± slope pairs up to one rounding of plateau/drain).
        assert!(eval_deltas(&d, 1e6).abs() < 1e-6);
    }

    #[test]
    fn slope_deltas_of_degenerate_profile_are_empty() {
        let p = SpaceProfile::new(30.0, 30.0, SZ, P);
        assert!(p.slope_deltas().is_empty());
    }

    #[test]
    fn slope_delta_times_are_non_decreasing() {
        for p in [
            SpaceProfile::new(3.0, 9.0, SZ, P),
            SpaceProfile::with_model(3.0, 103.0, SZ, P, SpaceModel::GradualFill),
            SpaceProfile::with_model(3.0, 500.0, SZ, P, SpaceModel::GradualFill),
        ] {
            let d = p.slope_deltas();
            assert!(d.windows(2).all(|w| w[0].t <= w[1].t), "{d:?}");
        }
    }
}
