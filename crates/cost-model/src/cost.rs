//! The mapping Ψ from a service schedule to dollars (paper Eqs. 1–4).

use crate::video::Catalog;
use crate::{Dollars, Residency, Schedule, SpaceModel, Transfer, Video, VideoSchedule};
use serde::{Deserialize, Serialize};
use vod_topology::{RouteTable, Topology};

/// How the network charging rate of a transfer is assessed (paper §2.2.2:
/// "Depending on the underlying network structure, charging rate can be
/// defined on per hop basis or end-to-end basis").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargingBasis {
    /// Sum the `nrate` of every hop the stream actually traverses. A relay
    /// detour through a caching storage pays for its extra hops.
    PerHop,
    /// Charge the cheapest end-to-end rate between the transfer's source
    /// and destination, regardless of the route actually taken.
    EndToEnd,
}

/// Prices schedules under a charging basis. Construct with
/// [`CostModel::per_hop`] or [`CostModel::end_to_end`].
#[derive(Clone, Debug)]
pub struct CostModel {
    basis: ChargingBasis,
    /// Cheapest end-to-end rates; only populated (and only consulted) for
    /// [`ChargingBasis::EndToEnd`].
    e2e: Option<RouteTable>,
    /// How residency occupancy accrues for pricing.
    space_model: SpaceModel,
}

impl CostModel {
    /// Per-hop charging (the default throughout the paper's evaluation).
    pub fn per_hop() -> Self {
        Self {
            basis: ChargingBasis::PerHop,
            e2e: None,
            space_model: SpaceModel::InstantReservation,
        }
    }

    /// End-to-end charging: rates are the cheapest-route rates of `topo`.
    pub fn end_to_end(topo: &Topology) -> Self {
        Self {
            basis: ChargingBasis::EndToEnd,
            e2e: Some(RouteTable::build(topo)),
            space_model: SpaceModel::InstantReservation,
        }
    }

    /// Switch the storage-pricing space model (ablation; the paper uses
    /// instant reservation). Overflow detection always uses the paper's
    /// instant-reservation accounting — §2.2.1 reserves the full plateau
    /// from the caching start, which is exactly what a real disk would
    /// have to guarantee at admission time.
    pub fn with_space_model(mut self, model: SpaceModel) -> Self {
        self.space_model = model;
        self
    }

    /// The configured space model.
    pub fn space_model(&self) -> SpaceModel {
        self.space_model
    }

    /// The configured basis.
    pub fn basis(&self) -> ChargingBasis {
        self.basis
    }

    /// Ψ_D(d): amortized network cost of one transfer (Eq. 4):
    /// `P_id · B_id · Σ nrate` over the charged hops.
    pub fn transfer_cost(&self, topo: &Topology, video: &Video, d: &Transfer) -> Dollars {
        debug_assert_eq!(video.id, d.video);
        let rate = match self.basis {
            ChargingBasis::PerHop => d
                .route
                .windows(2)
                .map(|w| {
                    topo.edge_between(w[0], w[1])
                        .unwrap_or_else(|| panic!("transfer hop {}-{} is not a link", w[0], w[1]))
                        .nrate
                })
                .sum::<f64>(),
            ChargingBasis::EndToEnd => {
                let table = self.e2e.as_ref().expect("end-to-end model carries a rate table");
                table.rate(d.src(), d.dst())
            }
        };
        video.amortized_bytes() * rate
    }

    /// Ψ_C(c): amortized storage cost of one residency (Eqs. 2–3):
    /// `srate(loc) · size · γ · ((t_f − t_s) + P/2)`, i.e. the charging
    /// rate times the full integral of the space profile.
    pub fn residency_cost(&self, topo: &Topology, video: &Video, c: &Residency) -> Dollars {
        topo.srate(c.loc) * c.profile_with(video, self.space_model).integral()
    }

    /// Ψ(S_i): cost of one video's schedule (network + storage terms).
    pub fn video_schedule_cost(
        &self,
        topo: &Topology,
        video: &Video,
        s: &VideoSchedule,
    ) -> Dollars {
        debug_assert_eq!(video.id, s.video);
        let network: Dollars = s.transfers.iter().map(|d| self.transfer_cost(topo, video, d)).sum();
        let storage: Dollars =
            s.residencies.iter().map(|c| self.residency_cost(topo, video, c)).sum();
        network + storage
    }

    /// Ψ(S): cost of the global schedule (Eq. 1).
    pub fn schedule_cost(&self, topo: &Topology, catalog: &Catalog, s: &Schedule) -> Dollars {
        s.videos().map(|vs| self.video_schedule_cost(topo, catalog.get(vs.video), vs)).sum()
    }

    /// Split of the global cost into (network, storage) components; useful
    /// for the qualitative analyses of §5.2/§5.3.
    pub fn schedule_cost_split(
        &self,
        topo: &Topology,
        catalog: &Catalog,
        s: &Schedule,
    ) -> (Dollars, Dollars) {
        let mut network = 0.0;
        let mut storage = 0.0;
        for vs in s.videos() {
            let v = catalog.get(vs.video);
            network += vs.transfers.iter().map(|d| self.transfer_cost(topo, v, d)).sum::<f64>();
            storage += vs.residencies.iter().map(|c| self.residency_cost(topo, v, c)).sum::<f64>();
        }
        (network, storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, VideoId};
    use vod_topology::{builders, units, NodeId, UserId};

    /// The paper's Fig. 2 environment. Network rates of 0.2 and 0.1
    /// ¢/(Mbps·s) convert to 16 and 8 $/GB of amortized traffic
    /// (0.2¢ × 5400 s × 6 Mbps = $64.80 for 4.05 GB). The storage rate of
    /// $1/(GB·h) makes the cached copy cost $9.375 exactly as printed.
    fn fig2() -> (Topology, RouteTable, Video) {
        let topo = builders::paper_fig2(16.0, 8.0, 1.0, 5.0);
        let routes = RouteTable::build(&topo);
        let video = Video::new(VideoId(0), units::gb(2.5), units::minutes(90.0), units::mbps(6.0));
        (topo, routes, video)
    }

    use vod_topology::Topology;

    /// Request times of the example: 1:00 pm, 2:30 pm, 4:00 pm.
    const T1: f64 = 13.0 * 3600.0;
    const T2: f64 = 14.5 * 3600.0;
    const T3: f64 = 16.0 * 3600.0;

    fn fig2_requests() -> [Request; 3] {
        [
            Request { user: UserId(0), video: VideoId(0), start: T1 },
            Request { user: UserId(1), video: VideoId(0), start: T2 },
            Request { user: UserId(2), video: VideoId(0), start: T3 },
        ]
    }

    /// Golden test: schedule S1 — every request streams straight from the
    /// warehouse. Ψ(S1) = $259.20.
    #[test]
    fn fig2_schedule_s1_cost() {
        let (topo, routes, video) = fig2();
        let [u1, u2, u3] = fig2_requests();
        let vw = topo.warehouse();
        let (is1, is2) = (NodeId(1), NodeId(2));

        let mut s = VideoSchedule::new(video.id);
        s.transfers.push(Transfer::for_user(&u1, routes.path(vw, is1)));
        s.transfers.push(Transfer::for_user(&u2, routes.path(vw, is2)));
        s.transfers.push(Transfer::for_user(&u3, routes.path(vw, is2)));

        let model = CostModel::per_hop();
        let cost = model.video_schedule_cost(&topo, &video, &s);
        assert!((cost - 259.2).abs() < 1e-9, "Ψ(S1) = {cost}, expected 259.2");
    }

    /// Golden test: schedule S2 — U1 streams from the warehouse while IS1
    /// caches the file; U2 and U3 are served from IS1's copy.
    /// Ψ(S2) = $138.975.
    #[test]
    fn fig2_schedule_s2_cost() {
        let (topo, routes, video) = fig2();
        let [u1, u2, u3] = fig2_requests();
        let vw = topo.warehouse();
        let (is1, is2) = (NodeId(1), NodeId(2));

        let mut s = VideoSchedule::new(video.id);
        s.transfers.push(Transfer::for_user(&u1, routes.path(vw, is1)));
        s.transfers.push(Transfer::for_user(&u2, routes.path(is1, is2)));
        s.transfers.push(Transfer::for_user(&u3, routes.path(is1, is2)));
        let mut res = crate::Residency::begin(is1, vw, u1);
        res.extend(u2);
        res.extend(u3);
        s.residencies.push(res);

        let model = CostModel::per_hop();
        let cost = model.video_schedule_cost(&topo, &video, &s);
        assert!((cost - 138.975).abs() < 1e-9, "Ψ(S2) = {cost}, expected 138.975");

        // Component check: $129.60 network + $9.375 storage.
        let net: f64 = s.transfers.iter().map(|d| model.transfer_cost(&topo, &video, d)).sum();
        let sto: f64 = s.residencies.iter().map(|c| model.residency_cost(&topo, &video, c)).sum();
        assert!((net - 129.6).abs() < 1e-9);
        assert!((sto - 9.375).abs() < 1e-9);
    }

    /// The paper's conclusion for the example: S2 is cheaper than S1,
    /// computed from the actual schedules rather than the golden figures.
    #[test]
    fn fig2_s2_beats_s1() {
        let (topo, routes, video) = fig2();
        let [u1, u2, u3] = fig2_requests();
        let vw = topo.warehouse();
        let (is1, is2) = (NodeId(1), NodeId(2));
        let model = CostModel::per_hop();

        let mut s1 = VideoSchedule::new(video.id);
        s1.transfers.push(Transfer::for_user(&u1, routes.path(vw, is1)));
        s1.transfers.push(Transfer::for_user(&u2, routes.path(vw, is2)));
        s1.transfers.push(Transfer::for_user(&u3, routes.path(vw, is2)));

        let mut s2 = VideoSchedule::new(video.id);
        s2.transfers.push(Transfer::for_user(&u1, routes.path(vw, is1)));
        s2.transfers.push(Transfer::for_user(&u2, routes.path(is1, is2)));
        s2.transfers.push(Transfer::for_user(&u3, routes.path(is1, is2)));
        let mut res = crate::Residency::begin(is1, vw, u1);
        res.extend(u2);
        res.extend(u3);
        s2.residencies.push(res);

        let c1 = model.video_schedule_cost(&topo, &video, &s1);
        let c2 = model.video_schedule_cost(&topo, &video, &s2);
        assert!(c2 < c1, "Ψ(S2) = {c2} must beat Ψ(S1) = {c1}");
    }

    #[test]
    fn per_hop_charges_actual_route_detours() {
        let (topo, _routes, video) = fig2();
        let vw = topo.warehouse();
        let (is1, is2) = (NodeId(1), NodeId(2));
        // A detour VW→IS1→IS2→IS1 (artificial) pays for all three hops
        // under per-hop charging.
        let d =
            Transfer { video: video.id, route: vec![vw, is1, is2, is1], start: 0.0, user: None };
        let per_hop = CostModel::per_hop().transfer_cost(&topo, &video, &d);
        // 16 + 8 + 8 = 32 $/GB on 4.05 GB.
        assert!((per_hop - 4.05 * 32.0).abs() < 1e-9);

        // End-to-end charging prices src→dst at the cheapest rate (16).
        let e2e = CostModel::end_to_end(&topo).transfer_cost(&topo, &video, &d);
        assert!((e2e - 4.05 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn bases_agree_on_cheapest_routes() {
        let (topo, routes, video) = fig2();
        let vw = topo.warehouse();
        let is2 = NodeId(2);
        let d = Transfer::cache_fill(video.id, routes.path(vw, is2), 0.0);
        let a = CostModel::per_hop().transfer_cost(&topo, &video, &d);
        let b = CostModel::end_to_end(&topo).transfer_cost(&topo, &video, &d);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn zero_hop_transfer_is_free() {
        let (topo, routes, video) = fig2();
        let is1 = NodeId(1);
        let d = Transfer::cache_fill(video.id, routes.path(is1, is1), 0.0);
        assert_eq!(CostModel::per_hop().transfer_cost(&topo, &video, &d), 0.0);
    }

    #[test]
    fn degenerate_residency_costs_nothing() {
        let (topo, _routes, video) = fig2();
        let [u1, ..] = fig2_requests();
        let res = crate::Residency::begin(NodeId(1), topo.warehouse(), u1);
        assert_eq!(CostModel::per_hop().residency_cost(&topo, &video, &res), 0.0);
    }

    #[test]
    fn short_residency_cost_scales_with_gamma() {
        let (topo, _routes, video) = fig2();
        let model = CostModel::per_hop();
        // Residency of half the playback length: γ = 0.5.
        let mut res = crate::Residency::begin(
            NodeId(1),
            topo.warehouse(),
            Request { user: UserId(0), video: video.id, start: 0.0 },
        );
        res.extend(Request { user: UserId(1), video: video.id, start: video.playback / 2.0 });
        let cost = model.residency_cost(&topo, &video, &res);
        // srate · size · γ · (Δ + P/2) with Δ = P/2:
        // = 1/(GB·h) · 2.5 GB · 0.5 · P = 2.5 · 0.5 · 1.5h = $1.875.
        assert!((cost - 1.875).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn schedule_cost_sums_over_videos() {
        let (topo, routes, video) = fig2();
        let video2 = Video::new(VideoId(1), units::gb(1.0), units::minutes(60.0), units::mbps(4.0));
        let catalog = Catalog::new(vec![video, video2]);
        let vw = topo.warehouse();
        let is1 = NodeId(1);

        let mut a = VideoSchedule::new(video.id);
        a.transfers.push(Transfer::cache_fill(video.id, routes.path(vw, is1), 0.0));
        let mut b = VideoSchedule::new(video2.id);
        b.transfers.push(Transfer::cache_fill(video2.id, routes.path(vw, is1), 0.0));

        let model = CostModel::per_hop();
        let ca = model.video_schedule_cost(&topo, &video, &a);
        let cb = model.video_schedule_cost(&topo, &video2, &b);
        let mut s = Schedule::new();
        s.upsert(a);
        s.upsert(b);
        let total = model.schedule_cost(&topo, &catalog, &s);
        assert!((total - (ca + cb)).abs() < 1e-9);

        let (net, sto) = model.schedule_cost_split(&topo, &catalog, &s);
        assert!((net + sto - total).abs() < 1e-9);
        assert_eq!(sto, 0.0);
    }
}
