//! The paper's qualitative claims, asserted on the experiment harness
//! (Fast preset — the Paper preset regenerates the full figures via
//! `vodx`; see EXPERIMENTS.md for the recorded outputs).

use vod_paradigm::experiments::{figures, table5, Preset, Series};

fn gaps(direct: &Series, with_is: &Series) -> Vec<f64> {
    direct.points.iter().zip(&with_is.points).map(|(d, w)| d.1 - w.1).collect()
}

/// §5.2 / Fig. 5: "The advantage of using intermediate storage becomes
/// more significant as the network charging rate increases", and total
/// cost grows with the network charging rate.
#[test]
fn fig5_advantage_grows_with_network_rate() {
    let f = figures::fig5(Preset::Fast);
    let direct = f.series("Network only system").expect("baseline series");
    for s in &f.series {
        assert!(s.is_non_decreasing(), "{} must grow with nrate", s.label);
    }
    for s in f.series.iter().filter(|s| s.label.starts_with("srate")) {
        let g = gaps(direct, s);
        assert!(
            g.last().unwrap() >= &(g.first().unwrap() - 1e-6),
            "{}: saving must widen with nrate (gaps {:?})",
            s.label,
            g
        );
        assert!(g.iter().all(|&x| x >= -1e-6), "{}: never worse than direct", s.label);
    }
}

/// §5.2 / Fig. 5: "the vertical distance between each straight line …
/// is small" — storage-rate variation shifts cost far less than the
/// network-rate sweep does.
#[test]
fn fig5_storage_rate_effect_is_second_order() {
    let f = figures::fig5(Preset::Fast);
    let lines: Vec<&Series> = f.series.iter().filter(|s| s.label.starts_with("srate")).collect();
    assert!(lines.len() >= 2);
    let first = lines.first().unwrap();
    let last = lines.last().unwrap();
    // Spread between cheapest and dearest storage rate at the largest
    // nrate, vs the swing along the nrate axis.
    let srate_spread = (last.points.last().unwrap().1 - first.points.last().unwrap().1).abs();
    let nrate_swing = first.points.last().unwrap().1 - first.points.first().unwrap().1;
    assert!(
        srate_spread < nrate_swing * 0.5,
        "storage-rate spread {srate_spread} should be small vs nrate swing {nrate_swing}"
    );
}

/// §5.2 / Fig. 6: less biased access (larger α) costs more.
#[test]
fn fig6_cost_rises_as_skew_flattens() {
    let f = figures::fig6(Preset::Fast);
    // At every nrate, the α = 0.1 curve lies below the α = 0.7 curve.
    let low = f.series("alpha = 0.1").unwrap();
    let high = f.series("alpha = 0.7").unwrap();
    for (l, h) in low.points.iter().zip(&high.points) {
        assert!(l.1 <= h.1 + 1e-6, "at nrate {}: {} !<= {}", l.0, l.1, h.1);
    }
}

/// §5.3 / Fig. 7: cost rises with the storage charging rate and
/// approaches (never exceeding) the network-only level.
#[test]
fn fig7_saturates_toward_network_only() {
    let f = figures::fig7(Preset::Fast);
    let with_is = f.series("With intermediate storage").unwrap();
    let direct = f.series("Network only system").unwrap();
    assert!(with_is.is_non_decreasing());
    for (w, d) in with_is.points.iter().zip(&direct.points) {
        assert!(w.1 <= d.1 + 1e-6);
    }
    let g = gaps(direct, with_is);
    assert!(
        *g.last().unwrap() <= g.first().unwrap() + 1e-6,
        "gap must shrink as storage gets expensive: {g:?}"
    );
}

/// §5.3 / Fig. 8: total cost increases linearly-ish with the network
/// charging rate (higher nrate curve strictly above), while the storage
/// rate matters mainly at the cheap end.
#[test]
fn fig8_network_rate_dominates() {
    let f = figures::fig8(Preset::Fast);
    let low = f.series("nrate = 300").unwrap();
    let high = f.series("nrate = 900").unwrap();
    for (l, h) in low.points.iter().zip(&high.points) {
        assert!(h.1 > l.1, "at srate {}: nrate 900 must cost more", l.0);
    }
    // Slope flattens: the increase over the last half of the srate sweep
    // is no larger than over the first half.
    for s in &f.series {
        let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
        let mid = ys.len() / 2;
        let first_half = ys[mid] - ys[0];
        let second_half = ys[ys.len() - 1] - ys[mid];
        assert!(
            second_half <= first_half + 1e-6 * ys[0].abs().max(1.0),
            "{}: effect of srate should taper ({first_half} then {second_half})",
            s.label
        );
    }
}

/// §5.4 / Fig. 9: cost rises as access flattens; larger stores help, and
/// they help more under skewed access.
#[test]
fn fig9_capacity_helps_most_under_skew() {
    let f = figures::fig9(Preset::Fast);
    let small = f.series("IS size = 5 GB").unwrap();
    let big = f.series("IS size = 11 GB").unwrap();
    for (s, b) in small.points.iter().zip(&big.points) {
        assert!(b.1 <= s.1 + 1e-6, "bigger store cannot cost more (alpha {})", s.0);
    }
    let gap_at = |x: f64| small.y_at(x).unwrap() - big.y_at(x).unwrap();
    assert!(
        gap_at(0.1) >= gap_at(0.9) - 1e-6,
        "capacity advantage should be largest under skewed access: {} vs {}",
        gap_at(0.1),
        gap_at(0.9)
    );
}

/// §5.5 / Table 5: the ratio metrics (methods 2 and 4) dominate victim
/// selection, as in the paper's 98 % result.
#[test]
fn table5_ratio_metrics_dominate() {
    let r = table5::run(Preset::Fast);
    assert!(r.changed_cases > 0, "sweep must exercise overflow resolution");
    // Method 2 or 4 wins (possibly tied) in the vast majority of cases.
    assert!(
        r.m2_or_m4_share() >= 0.9,
        "methods 2/4 should dominate: {:.0} %",
        100.0 * r.m2_or_m4_share()
    );
    // Each ratio metric beats its non-ratio counterpart overall.
    assert!(
        r.best_counts[1] >= r.best_counts[0],
        "m2 {} vs m1 {}",
        r.best_counts[1],
        r.best_counts[0]
    );
    assert!(
        r.best_counts[3] >= r.best_counts[2],
        "m4 {} vs m3 {}",
        r.best_counts[3],
        r.best_counts[2]
    );
}

/// The Fig. 2 worked example, end to end through the public API.
#[test]
fn fig2_golden_costs() {
    use vod_paradigm::prelude::*;
    let topo = builders::paper_fig2(16.0, 8.0, 1.0, 5.0);
    let routes = RouteTable::build(&topo);
    let video = Video::new(VideoId(0), units::gb(2.5), units::minutes(90.0), units::mbps(6.0));
    let model = CostModel::per_hop();

    let reqs: Vec<Request> = [(0u32, 13.0), (1, 14.5), (2, 16.0)]
        .iter()
        .map(|&(u, h)| Request { user: UserId(u), video: video.id, start: h * 3600.0 })
        .collect();

    let vw = topo.warehouse();
    let (is1, is2) = (NodeId(1), NodeId(2));
    let mut s1 = VideoSchedule::new(video.id);
    s1.transfers.push(Transfer::for_user(&reqs[0], routes.path(vw, is1)));
    s1.transfers.push(Transfer::for_user(&reqs[1], routes.path(vw, is2)));
    s1.transfers.push(Transfer::for_user(&reqs[2], routes.path(vw, is2)));
    assert!((model.video_schedule_cost(&topo, &video, &s1) - 259.2).abs() < 1e-9);

    let mut s2 = VideoSchedule::new(video.id);
    s2.transfers.push(Transfer::for_user(&reqs[0], routes.path(vw, is1)));
    s2.transfers.push(Transfer::for_user(&reqs[1], routes.path(is1, is2)));
    s2.transfers.push(Transfer::for_user(&reqs[2], routes.path(is1, is2)));
    let mut copy = Residency::begin(is1, vw, reqs[0]);
    copy.extend(reqs[1]);
    copy.extend(reqs[2]);
    s2.residencies.push(copy);
    assert!((model.video_schedule_cost(&topo, &video, &s2) - 138.975).abs() < 1e-9);
}
