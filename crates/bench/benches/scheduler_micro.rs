//! Micro-benchmarks of the scheduler's building blocks: routing,
//! individual video scheduling, schedule integration, overflow detection,
//! full resolution, the baselines, and the simulator replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vod_bench::Fixture;
use vod_core::{
    baselines, detect_overflows, find_video_schedule, ivsp_solve, ivsp_solve_priced,
    ivsp_solve_with_mode, sorp_solve, sorp_solve_priced, ExecMode, GreedyPolicy, SorpConfig,
    StorageLedger,
};
use vod_simulator::{simulate, SimOptions};
use vod_topology::RouteTable;

fn bench(c: &mut Criterion) {
    let fx = Fixture::paper_baseline();
    let ctx = fx.ctx();

    c.bench_function("route_table_build_20_nodes", |b| b.iter(|| RouteTable::build(&fx.topo)));

    // The busiest single-video group in the batch.
    let (_, biggest) =
        fx.requests.groups().max_by_key(|(_, g)| g.len()).expect("batch is non-empty");
    c.bench_function(&format!("find_video_schedule_{}_requests", biggest.len()), |b| {
        b.iter(|| find_video_schedule(&ctx, biggest))
    });

    c.bench_function("ivsp_solve_full_batch", |b| b.iter(|| ivsp_solve(&ctx, &fx.requests)));

    // Same phase-1 work under both execution modes (bit-identical output;
    // the gap is the parallel fan-out overhead or speedup).
    c.bench_function("ivsp_solve_sequential", |b| {
        b.iter(|| {
            ivsp_solve_with_mode(&ctx, &fx.requests, GreedyPolicy::default(), ExecMode::Sequential)
        })
    });
    c.bench_function("ivsp_solve_parallel", |b| {
        b.iter(|| {
            ivsp_solve_with_mode(&ctx, &fx.requests, GreedyPolicy::default(), ExecMode::Parallel)
        })
    });
    c.bench_function("ivsp_solve_priced", |b| b.iter(|| ivsp_solve_priced(&ctx, &fx.requests)));

    let phase1 = fx.phase1();
    c.bench_function("ledger_from_schedule", |b| {
        b.iter(|| StorageLedger::from_schedule(&fx.topo, &fx.catalog, &phase1))
    });

    let ledger = StorageLedger::from_schedule(&fx.topo, &fx.catalog, &phase1);
    c.bench_function("detect_overflows", |b| b.iter(|| detect_overflows(&fx.topo, &ledger)));

    let mut g = c.benchmark_group("sorp_solve_full");
    g.sample_size(10);
    g.bench_function("baseline_cell", |b| {
        b.iter_batched(
            || phase1.clone(),
            |p1| sorp_solve(&ctx, &p1, &SorpConfig::default()),
            BatchSize::LargeInput,
        )
    });
    // The incremental-pricing path, sequential vs parallel trial fan-out.
    let priced = fx.phase1_priced();
    g.bench_function("priced_sequential", |b| {
        b.iter_batched(
            || priced.clone(),
            |p1| sorp_solve_priced(&ctx, p1, &SorpConfig::default(), &[], ExecMode::Sequential),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("priced_parallel", |b| {
        b.iter_batched(
            || priced.clone(),
            |p1| sorp_solve_priced(&ctx, p1, &SorpConfig::default(), &[], ExecMode::Parallel),
            BatchSize::LargeInput,
        )
    });
    // End-to-end resolution on the naive reference ledger (bit-identical
    // schedule, slower admission tests) — the timeline's e2e comparator.
    let reference_cfg = SorpConfig { use_reference_ledger: true, ..SorpConfig::default() };
    g.bench_function("priced_sequential_reference_ledger", |b| {
        b.iter_batched(
            || priced.clone(),
            |p1| sorp_solve_priced(&ctx, p1, &reference_cfg, &[], ExecMode::Sequential),
            BatchSize::LargeInput,
        )
    });
    g.finish();

    c.bench_function("baseline_network_only", |b| {
        b.iter(|| baselines::network_only(&ctx, &fx.requests))
    });

    let resolved = sorp_solve(&ctx, &phase1, &SorpConfig::default()).schedule;
    c.bench_function("simulate_resolved_schedule", |b| {
        b.iter(|| {
            simulate(&fx.topo, &fx.catalog, &fx.model, &resolved, &SimOptions::strict(&fx.requests))
        })
    });

    c.bench_function("schedule_cost", |b| b.iter(|| ctx.schedule_cost(&resolved)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
