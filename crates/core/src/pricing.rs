//! Incremental pricing layer: a schedule plus a per-video Ψ memo.
//!
//! The SORP loop replaces one video's schedule per iteration. Re-pricing
//! the whole schedule after every commit is O(videos) per iteration;
//! since Ψ is additive over per-video schedules (`schedule_cost` is the
//! ordered sum of `video_cost`), replacing one video changes the total
//! by exactly `Ψ(new_vs) − Ψ(old_vs)`. [`PricedSchedule`] keeps the
//! per-video costs memoized and maintains the running total by that
//! delta, cross-checking against the closed-form full recompute under
//! `debug_assert`.
//!
//! The memo doubles as the answer to "what does this video cost right
//! now?" — which the SORP trial loop needs once per overflow
//! participant per iteration, and previously recomputed from scratch
//! every time.

use crate::greedy::{find_video_schedule_with, GreedyPolicy};
use crate::SchedCtx;
use std::collections::HashMap;
use vod_cost_model::{Dollars, RequestBatch, Schedule, VideoId, VideoSchedule};
use vod_parallel::{map_with_mode, ExecMode};

/// Relative tolerance for the incremental-vs-closed-form cross-checks.
/// Delta accumulation drifts by at most a few ulps per commit; 1e-6
/// relative leaves orders of magnitude of headroom while still catching
/// any real accounting bug.
const PRICING_EPS: f64 = 1e-6;

/// A [`Schedule`] bundled with its per-video Ψ memo and running total.
///
/// Invariant: `total()` equals the ordered sum of the memoized per-video
/// costs over `schedule().videos()`, which in turn equals
/// `ctx.schedule_cost(schedule())` up to delta-accumulation noise (the
/// exact equality is `debug_assert`ed on every commit).
#[derive(Clone, Debug)]
pub struct PricedSchedule {
    schedule: Schedule,
    costs: HashMap<VideoId, Dollars>,
    total: Dollars,
}

impl PricedSchedule {
    /// Price every video of `schedule` (in parallel) and take ownership.
    pub fn price(ctx: &SchedCtx<'_>, schedule: Schedule) -> Self {
        Self::price_with_mode(ctx, schedule, ExecMode::default())
    }

    /// [`PricedSchedule::price`] with an explicit execution mode; both
    /// modes produce bit-identical totals (per-video costs are computed
    /// independently and summed in schedule order).
    pub fn price_with_mode(ctx: &SchedCtx<'_>, schedule: Schedule, mode: ExecMode) -> Self {
        let videos: Vec<&VideoSchedule> = schedule.videos().collect();
        let priced = map_with_mode(mode, &videos, |vs| ctx.video_cost(vs));
        let mut costs = HashMap::with_capacity(videos.len());
        let mut total = 0.0;
        for (vs, cost) in videos.iter().zip(&priced) {
            costs.insert(vs.video, *cost);
            total += *cost;
        }
        Self { schedule, costs, total }
    }

    /// Assemble from already-priced per-video schedules (the phase-1
    /// path: the greedy worker that built a video's schedule also priced
    /// it). The total is summed in schedule (video-id) order so it is
    /// bit-identical to [`PricedSchedule::price`] of the same schedule.
    pub fn from_priced_videos(pairs: Vec<(VideoSchedule, Dollars)>) -> Self {
        let mut costs = HashMap::with_capacity(pairs.len());
        let mut schedule = Schedule::new();
        for (vs, cost) in pairs {
            costs.insert(vs.video, cost);
            schedule.upsert(vs);
        }
        let total = schedule.videos().map(|vs| costs[&vs.video]).sum();
        Self { schedule, costs, total }
    }

    /// Merge per-shard priced schedules into one global memo **without
    /// recomputation**: Ψ is additive over a video's transfers and
    /// residencies (`video_cost` is their ordered sum), so a video split
    /// across shards prices its concatenated schedule at exactly the sum
    /// of its per-shard memo costs — up to float summation order, which
    /// is why every consumer compares through [`PRICING_EPS`]-relative
    /// checks rather than bit equality. Videos owned by a single shard
    /// keep their memo entry verbatim. A single part is returned
    /// unchanged (bit-identical total), which is what makes the 1-shard
    /// sharded pipeline coincide with the monolithic one.
    pub fn merge(mut parts: Vec<PricedSchedule>) -> Self {
        if parts.len() == 1 {
            return parts.pop().expect("one part is present");
        }
        let mut merged: std::collections::BTreeMap<VideoId, (VideoSchedule, Dollars)> =
            std::collections::BTreeMap::new();
        for part in parts {
            let Self { schedule, costs, .. } = part;
            for vs in schedule.into_videos() {
                let cost = costs[&vs.video];
                match merged.entry(vs.video) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert((vs, cost));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let (acc, acc_cost) = e.get_mut();
                        acc.transfers.extend(vs.transfers);
                        acc.residencies.extend(vs.residencies);
                        *acc_cost += cost;
                    }
                }
            }
        }
        Self::from_priced_videos(merged.into_values().collect())
    }

    /// The running total Ψ of the whole schedule.
    pub fn total(&self) -> Dollars {
        self.total
    }

    /// The memoized Ψ of one video's current schedule.
    pub fn video_cost(&self, video: VideoId) -> Option<Dollars> {
        self.costs.get(&video).copied()
    }

    /// Read access to the underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Unwrap the schedule, discarding the memo.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// Replace one video's schedule, updating the memo and the running
    /// total by delta. Returns `Ψ(new) − Ψ(old)` (the SORP overhead of
    /// this commit). Cross-checks the running total against the
    /// closed-form full recompute under `debug_assert`.
    pub fn commit(&mut self, ctx: &SchedCtx<'_>, new_vs: VideoSchedule) -> Dollars {
        let new_cost = ctx.video_cost(&new_vs);
        let old_cost = self.costs.insert(new_vs.video, new_cost).unwrap_or(0.0);
        let delta = new_cost - old_cost;
        self.total += delta;
        self.schedule.upsert(new_vs);
        debug_assert!(
            self.consistent_with(ctx),
            "incremental Ψ {} diverged from closed-form recompute {}",
            self.total,
            ctx.schedule_cost(&self.schedule)
        );
        delta
    }

    /// Whether the running total agrees with the closed-form
    /// `schedule_cost` recompute within [`PRICING_EPS`] (relative).
    /// O(videos) — meant for `debug_assert` and tests, not hot paths.
    pub fn consistent_with(&self, ctx: &SchedCtx<'_>) -> bool {
        let full = ctx.schedule_cost(&self.schedule);
        (self.total - full).abs() <= PRICING_EPS * full.abs().max(1.0)
    }
}

/// Phase 1 with pricing fused in: schedule every video group in
/// parallel, pricing each group's schedule on the worker that built it.
/// The result is ready for [`crate::sorp_solve_priced`] with no full
/// `schedule_cost` pass in between.
pub fn ivsp_solve_priced(ctx: &SchedCtx<'_>, batch: &RequestBatch) -> PricedSchedule {
    ivsp_solve_priced_with(ctx, batch, GreedyPolicy::default(), ExecMode::default())
}

/// [`ivsp_solve_priced`] under an explicit policy and execution mode.
pub fn ivsp_solve_priced_with(
    ctx: &SchedCtx<'_>,
    batch: &RequestBatch,
    policy: GreedyPolicy,
    mode: ExecMode,
) -> PricedSchedule {
    let groups: Vec<_> = batch.groups().collect();
    let pairs = map_with_mode(mode, &groups, |(_, group)| {
        let vs = find_video_schedule_with(ctx, group, policy);
        let cost = ctx.video_cost(&vs);
        (vs, cost)
    });
    PricedSchedule::from_priced_videos(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivsp_solve;
    use vod_cost_model::CostModel;
    use vod_topology::builders;
    use vod_workload::{CatalogConfig, RequestConfig, Workload};

    fn world(seed: u64) -> (vod_topology::Topology, vod_workload::Workload) {
        let cfg = builders::PaperFig4Config { capacity_gb: 5.0, ..Default::default() };
        let topo = builders::paper_fig4(&cfg);
        let wl =
            Workload::generate(&topo, &CatalogConfig::small(60), &RequestConfig::paper(), seed);
        (topo, wl)
    }

    #[test]
    fn pricing_matches_schedule_cost() {
        let (topo, wl) = world(11);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
        let schedule = ivsp_solve(&ctx, &wl.requests);
        let full = ctx.schedule_cost(&schedule);
        let priced = PricedSchedule::price(&ctx, schedule);
        assert_eq!(priced.total(), full, "ordered per-video sum must be bit-identical");
    }

    #[test]
    fn ivsp_solve_priced_agrees_with_ivsp_solve() {
        let (topo, wl) = world(12);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
        let plain = ivsp_solve(&ctx, &wl.requests);
        let priced = ivsp_solve_priced(&ctx, &wl.requests);
        assert_eq!(priced.total(), ctx.schedule_cost(&plain));
        assert!(priced.schedule() == &plain, "schedules must be identical");
    }

    #[test]
    fn commit_updates_by_delta_and_memoizes() {
        let (topo, wl) = world(13);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
        let mut priced = ivsp_solve_priced(&ctx, &wl.requests);

        // Re-commit an altered schedule for the first few videos and
        // check the memo tracks the recomputed per-video cost exactly.
        let vids: Vec<_> = priced.schedule().videos().map(|vs| vs.video).take(5).collect();
        for vid in vids {
            let old_vs = priced.schedule().video(vid).expect("scheduled").clone();
            let memo_before = priced.video_cost(vid).expect("priced");
            assert_eq!(memo_before, ctx.video_cost(&old_vs), "memo is the current cost");

            // Degrade the video to direct-only delivery (drop residencies).
            let mut direct = VideoSchedule::new(vid);
            direct.transfers = old_vs
                .delivered_requests()
                .iter()
                .map(|r| {
                    let home = ctx.topo.home_of(r.user);
                    vod_cost_model::Transfer::for_user(
                        r,
                        ctx.routes.path(ctx.topo.warehouse(), home),
                    )
                })
                .collect();
            let expected_delta = ctx.video_cost(&direct) - memo_before;
            let total_before = priced.total();
            let delta = priced.commit(&ctx, direct.clone());
            assert_eq!(delta, expected_delta);
            assert_eq!(priced.total(), total_before + delta);
            assert_eq!(priced.video_cost(vid), Some(ctx.video_cost(&direct)));
        }
        assert!(priced.consistent_with(&ctx));
    }
}
