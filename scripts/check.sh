#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Usage: scripts/check.sh  (from anywhere; runs at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --release (workspace, optimized)"
cargo test -q --release --offline --workspace

echo "==> bench smoke run (capacity_timeline --test)"
cargo bench --offline -p vod-bench --bench capacity_timeline -- --test

echo "==> bench smoke run (repair_latency --test)"
cargo bench --offline -p vod-bench --bench repair_latency -- --test

echo "==> bench smoke run (sorp_scaling --test)"
cargo bench --offline -p vod-bench --bench sorp_scaling -- --test

echo "==> bench smoke run (sorp_sharded --test)"
cargo bench --offline -p vod-bench --bench sorp_sharded -- --test

echo "==> bench smoke run (cycles_warm --test)"
cargo bench --offline -p vod-bench --bench cycles_warm -- --test

echo "==> bench smoke run (service_overload --test)"
cargo bench --offline -p vod-bench --bench service_overload -- --test

echo "==> bench smoke run (telemetry_overhead --test)"
cargo bench --offline -p vod-bench --bench telemetry_overhead -- --test

echo "==> sharded-scheduler property suite"
cargo test -q --offline -p vod-core --test shard_props

echo "==> warm-start property suite"
cargo test -q --offline -p vod-core --test warm_start_props

echo "==> service-frontend property + overload suites"
cargo test -q --offline -p vod-core --test service_props
cargo test -q --offline --test service_overload_e2e
cargo run -q --release --offline -p vod-experiments --bin vodx -- service >/dev/null

echo "==> fault-injection suite"
cargo test -q --offline -p vod-faults
cargo test -q --offline -p vod-core repair
cargo test -q --offline -p vod-core --test repair_props
cargo test -q --offline --test fault_injection_e2e --test failure_injection

echo "==> telemetry suite (obs crate + recorder transparency + e2e reconcile)"
cargo test -q --offline -p vod-obs
cargo test -q --offline -p vod-core --test telemetry_props
cargo test -q --offline --test telemetry_e2e
rec="$(mktemp /tmp/vod-flight.XXXXXX.jsonl)"
cargo run -q --release --offline -p vod-experiments --bin vodx -- service --fast --record "$rec" >/dev/null
cargo run -q --release --offline -p vod-experiments --bin vodx -- trace "$rec" >/dev/null
rm -f "$rec"

echo "==> comparator lint (no panicking partial_cmp in first-party code)"
# NaN-poisoned sorts panic at runtime; f64::total_cmp is the workspace rule.
if grep -rn --include='*.rs' -E 'partial_cmp\([^)]*\)\s*\.\s*(unwrap|expect)' \
    crates src tests examples 2>/dev/null; then
  echo "error: use f64::total_cmp instead of partial_cmp().unwrap()" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "All checks passed."
