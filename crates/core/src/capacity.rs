//! Per-storage occupancy bookkeeping.
//!
//! The scheduler "maintains information about the available space at the
//! intermediate storages" (paper §4.1). The ledger stores every
//! residency's [`SpaceProfile`] keyed by hosting storage, supports
//! excluding one video (needed while that video is being rescheduled), and
//! answers the two queries the algorithms need:
//!
//! * the aggregate usage at a time point ([`StorageLedger::usage_at`]),
//! * whether a candidate profile fits under the capacity together with
//!   everything else ([`StorageLedger::fits`]) — the admission test of the
//!   rejective greedy (§4.4).
//!
//! Both queries run against an incremental [`OccupancyTimeline`] per
//! storage: adding or removing a residency folds its ≤ 4 breakpoint
//! deltas into an ordered aggregate in O(log n) each, and the admission
//! test walks only the breakpoints inside the candidate's support with
//! exact left-limits — O(log n + span) instead of the naive O(k²)
//! rescan of every profile at the node. Two further fast paths:
//!
//! * a cached per-node **plateau sum** upper-bounds the aggregate
//!   everywhere, so any candidate with `plateau_sum + peak ≤ capacity`
//!   is admitted in O(1) without touching the timeline;
//! * [`StorageLedger::fits`] abandons the walk as soon as the running
//!   peak exceeds the capacity threshold.
//!
//! The pre-timeline flat scan survives as the *reference* implementation
//! ([`LedgerMode::Reference`], selected with
//! [`StorageLedger::set_mode`]): the equivalence property tests and the
//! `capacity_timeline` bench run both implementations against each other.

use crate::overflow::CAPACITY_EPS;
use crate::timeline::OccupancyTimeline;
use vod_cost_model::{Bytes, Catalog, Schedule, Secs, SpaceProfile, VideoId};
use vod_topology::{NodeId, Topology};

/// Which admission-test implementation a ledger runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LedgerMode {
    /// The incremental occupancy timeline (the production path).
    #[default]
    Timeline,
    /// The flat per-profile rescan the timeline replaced. Kept as the
    /// oracle for equivalence tests and benchmarks; asymptotically O(k²)
    /// per admission test.
    Reference,
}

/// Reusable scratch buffers for the timeline admission test, so the hot
/// `fits` path performs no per-call allocations. One cursor per worker:
/// the rejective greedy allocates one per reschedule and threads it
/// through every admission test of that video.
#[derive(Clone, Debug, Default)]
pub struct LedgerCursor {
    /// Overlay deltas: the candidate's breakpoints plus the negated
    /// breakpoints of the excluded video, sorted by time.
    overlay: Vec<(Secs, Bytes, f64)>,
    /// Timeline breakpoints inside the candidate's support.
    support: Vec<(Secs, Bytes, f64)>,
}

impl LedgerCursor {
    /// A cursor with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Occupancy ledger over every intermediate storage.
#[derive(Clone, Debug)]
pub struct StorageLedger {
    /// Per node: `(video, profile)` entries with positive plateau. The
    /// flat list is the source of truth for removal bookkeeping, the
    /// `exclude` overlays, and the reference oracle.
    entries: Vec<Vec<(VideoId, SpaceProfile)>>,
    /// Per node: the aggregate occupancy as an incremental breakpoint
    /// timeline (always maintained alongside `entries`).
    timelines: Vec<OccupancyTimeline>,
    /// Per node: Σ plateau over resident profiles — an upper bound on the
    /// aggregate occupancy at every instant, backing the O(1) headroom
    /// fast path.
    plateau_sum: Vec<Bytes>,
    mode: LedgerMode,
}

impl StorageLedger {
    /// An empty ledger for a topology.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.node_count();
        Self {
            entries: vec![Vec::new(); n],
            timelines: vec![OccupancyTimeline::new(); n],
            plateau_sum: vec![0.0; n],
            mode: LedgerMode::default(),
        }
    }

    /// Build the ledger of every residency in `schedule`. Degenerate
    /// (zero-space) residencies are skipped — they are pure relays.
    pub fn from_schedule(topo: &Topology, catalog: &Catalog, schedule: &Schedule) -> Self {
        let mut ledger = Self::new(topo);
        for r in schedule.residencies() {
            let p = r.profile(catalog.get(r.video));
            ledger.add(r.loc, r.video, p);
        }
        ledger
    }

    /// Switch the admission-test implementation (equivalence testing and
    /// benchmarking only — [`LedgerMode::Timeline`] is the default and
    /// strictly faster).
    pub fn set_mode(&mut self, mode: LedgerMode) {
        self.mode = mode;
    }

    /// The active admission-test implementation.
    pub fn mode(&self) -> LedgerMode {
        self.mode
    }

    /// Record a profile at a storage (no-op for zero-space profiles).
    /// O(log n) in the node's breakpoint count.
    pub fn add(&mut self, loc: NodeId, video: VideoId, profile: SpaceProfile) {
        if profile.peak() > 0.0 {
            let i = loc.index();
            self.entries[i].push((video, profile));
            for d in &profile.slope_deltas() {
                self.timelines[i].add(d.t, d.jump, d.slope);
            }
            self.plateau_sum[i] += profile.peak();
        }
    }

    /// Drop every profile belonging to `video` (ahead of rescheduling it).
    ///
    /// Scans every node; when the caller knows which storages the video
    /// occupies (SORP's commit does — the outgoing schedule lists its
    /// residencies), prefer the incremental [`StorageLedger::remove`].
    pub fn remove_video(&mut self, video: VideoId) {
        for loc in 0..self.entries.len() {
            self.remove_at_index(loc, video);
        }
    }

    /// Drop every profile of `video` recorded at `loc` only — the
    /// incremental counterpart of [`StorageLedger::remove_video`].
    /// Idempotent, and a no-op if the video has nothing recorded there.
    pub fn remove(&mut self, loc: NodeId, video: VideoId) {
        self.remove_at_index(loc.index(), video);
    }

    fn remove_at_index(&mut self, i: usize, video: VideoId) {
        let (timeline, plateau_sum) = (&mut self.timelines[i], &mut self.plateau_sum[i]);
        self.entries[i].retain(|(v, p)| {
            if *v != video {
                return true;
            }
            for d in &p.slope_deltas() {
                timeline.remove(d.t, d.jump, d.slope);
            }
            *plateau_sum -= p.peak();
            false
        });
        if self.entries[i].is_empty() {
            // Clamp float drift: an empty node occupies exactly nothing.
            *plateau_sum = 0.0;
            debug_assert!(timeline.is_empty());
        }
    }

    /// Whether any profile of `video` is recorded at any storage.
    /// O(total entries); used by tests and SORP's debug cross-checks.
    pub fn contains_video(&self, video: VideoId) -> bool {
        self.entries.iter().any(|node| node.iter().any(|(v, _)| *v == video))
    }

    /// Number of recorded (non-degenerate) profiles at `loc`.
    pub fn profile_count(&self, loc: NodeId) -> usize {
        self.entries[loc.index()].len()
    }

    /// Σ plateau over the profiles resident at `loc` — an upper bound on
    /// the aggregate occupancy at every instant, maintained in O(1) per
    /// add/remove. `capacity − plateau_sum` is the node's guaranteed
    /// headroom: any candidate whose peak fits under it is admissible
    /// without a timeline walk.
    pub fn plateau_sum(&self, loc: NodeId) -> Bytes {
        self.plateau_sum[loc.index()]
    }

    /// Aggregate occupancy at `loc` at time `t`, in bytes, optionally
    /// excluding one video's profiles. Right-continuous in `t`.
    /// O(log n + excluded) on the timeline path.
    pub fn usage_at(&self, loc: NodeId, t: Secs, exclude: Option<VideoId>) -> Bytes {
        match self.mode {
            LedgerMode::Reference => self.usage_at_reference(loc, t, exclude),
            LedgerMode::Timeline => {
                let i = loc.index();
                let mut u = self.timelines[i].prefix(t).value_at(t);
                if let Some(v) = exclude {
                    for (vid, p) in &self.entries[i] {
                        if *vid == v {
                            u -= p.space_at(t);
                        }
                    }
                }
                u
            }
        }
    }

    /// Reference implementation of [`StorageLedger::usage_at`]: a flat
    /// sum over every profile at the node (the equivalence oracle).
    pub fn usage_at_reference(&self, loc: NodeId, t: Secs, exclude: Option<VideoId>) -> Bytes {
        self.entries[loc.index()]
            .iter()
            .filter(|(v, _)| Some(*v) != exclude)
            .map(|(_, p)| p.space_at(t))
            .sum()
    }

    /// Every breakpoint of the profiles at `loc`, **sorted and deduped**,
    /// optionally excluding one video.
    pub fn breakpoints(&self, loc: NodeId, exclude: Option<VideoId>) -> Vec<Secs> {
        let i = loc.index();
        match (self.mode, exclude) {
            (LedgerMode::Timeline, None) => {
                // The timeline's in-order walk is sorted and unique.
                let mut out = Vec::with_capacity(self.timelines[i].breakpoint_count());
                self.timelines[i].visit_all(|t, _, _| out.push(t));
                out
            }
            _ => {
                let mut out = Vec::with_capacity(self.entries[i].len() * 4);
                for (v, p) in &self.entries[i] {
                    if Some(*v) != exclude {
                        out.extend(p.breakpoints());
                    }
                }
                out.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
                out.dedup();
                out
            }
        }
    }

    /// Walk every linear segment of the aggregate occupancy at `loc`
    /// between consecutive breakpoints, yielding `(t0, t1, u0, u1)` with
    /// the right-continuous value `u0` at `t0` and the **exact** left
    /// limit `u1` at `t1`. Allocation-free; the overflow detector's scan.
    pub fn for_each_segment<F: FnMut(Secs, Secs, Bytes, Bytes)>(&self, loc: NodeId, f: F) {
        self.timelines[loc.index()].for_each_segment(f);
    }

    /// Peak of `usage + candidate` over the candidate's support.
    pub fn peak_with(
        &self,
        loc: NodeId,
        candidate: &SpaceProfile,
        exclude: Option<VideoId>,
    ) -> Bytes {
        match self.mode {
            LedgerMode::Reference => self.peak_with_reference(loc, candidate, exclude),
            LedgerMode::Timeline => {
                let mut cursor = LedgerCursor::new();
                self.peak_walk(loc, candidate, exclude, &mut cursor, f64::INFINITY)
            }
        }
    }

    /// [`StorageLedger::peak_with`] on caller-provided scratch buffers
    /// (no per-call allocation once the cursor has warmed up).
    pub fn peak_with_cursor(
        &self,
        loc: NodeId,
        candidate: &SpaceProfile,
        exclude: Option<VideoId>,
        cursor: &mut LedgerCursor,
    ) -> Bytes {
        match self.mode {
            LedgerMode::Reference => self.peak_with_reference(loc, candidate, exclude),
            LedgerMode::Timeline => self.peak_walk(loc, candidate, exclude, cursor, f64::INFINITY),
        }
    }

    /// Reference implementation of [`StorageLedger::peak_with`]: collect
    /// every breakpoint at the node, then rescan all profiles twice per
    /// segment, recovering left limits from a midpoint probe. O(k²).
    pub fn peak_with_reference(
        &self,
        loc: NodeId,
        candidate: &SpaceProfile,
        exclude: Option<VideoId>,
    ) -> Bytes {
        if candidate.peak() == 0.0 {
            return 0.0;
        }
        let mut points = Vec::with_capacity(self.entries[loc.index()].len() * 4 + 6);
        for (v, p) in &self.entries[loc.index()] {
            if Some(*v) != exclude {
                points.extend(p.breakpoints());
            }
        }
        points.extend(candidate.breakpoints());
        points.retain(|&t| (candidate.start..=candidate.end).contains(&t));
        points.push(candidate.start);
        points.push(candidate.end);
        points.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
        points.dedup();

        let combined = |t: Secs| self.usage_at_reference(loc, t, exclude) + candidate.space_at(t);
        let mut peak: Bytes = 0.0;
        for w in points.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 <= t0 {
                continue;
            }
            // Linear on [t0, t1): check the right-continuous start value
            // and the left limit at t1 (recovered via the midpoint).
            let u0 = combined(t0);
            let umid = combined(0.5 * (t0 + t1));
            let u1 = 2.0 * umid - u0;
            peak = peak.max(u0).max(u1);
        }
        if points.len() < 2 {
            peak = peak.max(combined(candidate.start));
        }
        peak
    }

    /// The timeline peak walk: evaluate `aggregate + candidate −
    /// excluded` at the support's endpoints and at every breakpoint
    /// inside it — right-continuous values and exact left limits — and
    /// abandon early once the running peak exceeds `stop_above`.
    ///
    /// The candidate and the excluded video's profiles are merged in as a
    /// small *overlay* delta list (the excluded deltas negated — they are
    /// part of the aggregate and must be backed out), so the aggregate
    /// timeline itself is never modified by a query.
    fn peak_walk(
        &self,
        loc: NodeId,
        candidate: &SpaceProfile,
        exclude: Option<VideoId>,
        cursor: &mut LedgerCursor,
        stop_above: f64,
    ) -> Bytes {
        if candidate.peak() == 0.0 {
            return 0.0;
        }
        let i = loc.index();
        let (cs, ce) = (candidate.start, candidate.end);

        let overlay = &mut cursor.overlay;
        overlay.clear();
        for d in &candidate.slope_deltas() {
            overlay.push((d.t, d.jump, d.slope));
        }
        if let Some(v) = exclude {
            for (vid, p) in &self.entries[i] {
                if *vid == v {
                    for d in &p.slope_deltas() {
                        overlay.push((d.t, -d.jump, -d.slope));
                    }
                }
            }
        }
        overlay.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("breakpoints are finite"));

        // Running prefix of the combined function: aggregate up to the
        // support start, plus every overlay delta at or before it.
        let mut p = self.timelines[i].prefix(cs);
        let mut oi = 0;
        while oi < overlay.len() && overlay[oi].0 <= cs {
            let (t, jump, dslope) = overlay[oi];
            p.jump += jump;
            p.slope += dslope;
            p.slope_t += dslope * t;
            oi += 1;
        }
        let mut peak: Bytes = p.value_at(cs).max(0.0);
        if peak > stop_above {
            return peak;
        }

        // Timeline breakpoints strictly inside the support (cs, ce].
        let support = &mut cursor.support;
        support.clear();
        self.timelines[i].visit_range(cs, ce, |t, jump, dslope| support.push((t, jump, dslope)));

        // Merge-walk the two sorted delta lists. At each distinct time:
        // exact left limit first, then fold in every delta sharing that
        // time, then the right-continuous value (skipped at the support
        // end — the candidate no longer occupies space there).
        let (mut si, n_s, n_o) = (0usize, support.len(), overlay.len());
        while si < n_s || oi < n_o {
            let t = match (support.get(si), overlay.get(oi)) {
                (Some(s), Some(o)) => s.0.min(o.0),
                (Some(s), None) => s.0,
                (None, Some(o)) => o.0,
                (None, None) => unreachable!("loop condition"),
            };
            if t > ce {
                break; // overlay deltas past the support are irrelevant
            }
            peak = peak.max(p.value_at(t));
            while si < n_s && support[si].0 == t {
                let (bt, jump, dslope) = support[si];
                p.jump += jump;
                p.slope += dslope;
                p.slope_t += dslope * bt;
                si += 1;
            }
            while oi < n_o && overlay[oi].0 == t {
                let (bt, jump, dslope) = overlay[oi];
                p.jump += jump;
                p.slope += dslope;
                p.slope_t += dslope * bt;
                oi += 1;
            }
            if t < ce {
                peak = peak.max(p.value_at(t));
            }
            if peak > stop_above {
                return peak;
            }
        }
        // Left limit at the support end (= value: the aggregate only
        // jumps upward, and the candidate holds nothing at its end).
        peak.max(p.value_at(ce))
    }

    /// Admission test: would adding `candidate` at `loc` keep aggregate
    /// occupancy within the storage's capacity at all times? Zero-space
    /// candidates always fit.
    pub fn fits(
        &self,
        topo: &Topology,
        loc: NodeId,
        candidate: &SpaceProfile,
        exclude: Option<VideoId>,
    ) -> bool {
        let mut cursor = LedgerCursor::new();
        self.fits_cursor(topo, loc, candidate, exclude, &mut cursor)
    }

    /// [`StorageLedger::fits`] on caller-provided scratch buffers — the
    /// allocation-free hot path of the rejective greedy.
    pub fn fits_cursor(
        &self,
        topo: &Topology,
        loc: NodeId,
        candidate: &SpaceProfile,
        exclude: Option<VideoId>,
        cursor: &mut LedgerCursor,
    ) -> bool {
        let capacity = topo.capacity(loc);
        if !capacity.is_finite() {
            return true;
        }
        let threshold = capacity * (1.0 + CAPACITY_EPS) + CAPACITY_EPS;
        match self.mode {
            LedgerMode::Reference => self.peak_with_reference(loc, candidate, exclude) <= threshold,
            LedgerMode::Timeline => {
                // O(1) fast path: the plateau sum bounds the aggregate
                // from above at every instant (profiles are non-negative,
                // and any excluded profiles only tighten the bound), so a
                // candidate fitting under it fits, full stop.
                if self.plateau_sum[loc.index()] + candidate.peak() <= capacity {
                    return true;
                }
                self.peak_walk(loc, candidate, exclude, cursor, threshold) <= threshold
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_topology::{builders, units};

    fn topo(cap_gb: f64) -> Topology {
        builders::paper_fig2(16.0, 8.0, 1.0, cap_gb)
    }

    fn profile(t_s: Secs, t_f: Secs) -> SpaceProfile {
        // 2 GB file, 1000 s playback.
        SpaceProfile::new(t_s, t_f, units::gb(2.0), 1000.0)
    }

    #[test]
    fn empty_ledger_reads_zero() {
        let t = topo(5.0);
        let l = StorageLedger::new(&t);
        assert_eq!(l.usage_at(NodeId(1), 0.0, None), 0.0);
        assert!(l.breakpoints(NodeId(1), None).is_empty());
        assert_eq!(l.profile_count(NodeId(1)), 0);
        assert_eq!(l.plateau_sum(NodeId(1)), 0.0);
    }

    use vod_topology::Topology;

    #[test]
    fn usage_sums_concurrent_profiles() {
        let t = topo(10.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        l.add(NodeId(1), VideoId(1), profile(1000.0, 4000.0));
        assert_eq!(l.usage_at(NodeId(1), 500.0, None), units::gb(2.0));
        assert_eq!(l.usage_at(NodeId(1), 2000.0, None), units::gb(4.0));
        // Excluding video 1 removes its contribution.
        assert_eq!(l.usage_at(NodeId(1), 2000.0, Some(VideoId(1))), units::gb(2.0));
        // Other locations unaffected.
        assert_eq!(l.usage_at(NodeId(2), 2000.0, None), 0.0);
        // The plateau-sum bound is maintained.
        assert_eq!(l.plateau_sum(NodeId(1)), units::gb(4.0));
    }

    #[test]
    fn degenerate_profiles_are_not_recorded() {
        let t = topo(5.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(100.0, 100.0));
        assert_eq!(l.profile_count(NodeId(1)), 0);
    }

    #[test]
    fn remove_video_clears_everywhere() {
        let t = topo(5.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        l.add(NodeId(2), VideoId(0), profile(0.0, 5000.0));
        l.add(NodeId(1), VideoId(1), profile(0.0, 5000.0));
        l.remove_video(VideoId(0));
        assert_eq!(l.profile_count(NodeId(1)), 1);
        assert_eq!(l.profile_count(NodeId(2)), 0);
        // The cleared node's occupancy reads exactly zero again.
        assert_eq!(l.usage_at(NodeId(2), 1000.0, None), 0.0);
        assert_eq!(l.plateau_sum(NodeId(2)), 0.0);
    }

    #[test]
    fn peak_with_detects_concurrent_plateaus() {
        let t = topo(5.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        let cand = profile(1000.0, 4000.0);
        let peak = l.peak_with(NodeId(1), &cand, None);
        assert!((peak - units::gb(4.0)).abs() < 1e-3, "peak {peak}");
    }

    #[test]
    fn peak_with_sees_partial_drain_overlap() {
        let t = topo(5.0);
        let mut l = StorageLedger::new(&t);
        // Drains over [5000, 6000].
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        // Candidate plateau begins mid-drain at 5500, where the old copy
        // still holds 1 GB.
        let cand = profile(5500.0, 9000.0);
        let peak = l.peak_with(NodeId(1), &cand, None);
        assert!((peak - units::gb(3.0)).abs() < 1e-3, "peak {peak}");
    }

    #[test]
    fn fits_respects_capacity() {
        let t = topo(3.0); // 3 GB capacity
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0)); // 2 GB resident
                                                            // Another concurrent 2 GB copy would need 4 GB: rejected.
        assert!(!l.fits(&t, NodeId(1), &profile(1000.0, 4000.0), None));
        // The same copy after the first has drained fits.
        assert!(l.fits(&t, NodeId(1), &profile(6500.0, 9000.0), None));
        // Excluding the resident video admits the overlap.
        assert!(l.fits(&t, NodeId(1), &profile(1000.0, 4000.0), Some(VideoId(0))));
    }

    #[test]
    fn fits_is_vacuous_at_the_warehouse() {
        let t = topo(3.0);
        let l = StorageLedger::new(&t);
        let huge = SpaceProfile::new(0.0, 1e6, units::gb(1e6), 1000.0);
        assert!(l.fits(&t, t.warehouse(), &huge, None));
    }

    #[test]
    fn zero_space_candidate_always_fits() {
        let t = topo(3.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        l.add(NodeId(1), VideoId(1), profile(0.0, 5000.0)); // already over!
        let relay = SpaceProfile::new(100.0, 100.0, units::gb(2.0), 1000.0);
        assert!(l.fits(&t, NodeId(1), &relay, None));
    }

    #[test]
    fn exact_fill_fits() {
        let t = topo(4.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        // Exactly 2 + 2 = 4 GB.
        assert!(l.fits(&t, NodeId(1), &profile(0.0, 5000.0), None));
    }

    #[test]
    fn breakpoints_are_sorted_and_deduped() {
        let t = topo(5.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        l.add(NodeId(1), VideoId(1), profile(0.0, 4000.0)); // shares t = 0
        l.add(NodeId(1), VideoId(2), profile(200.0, 5000.0)); // shares t = 5000
        let bps = l.breakpoints(NodeId(1), None);
        assert!(bps.windows(2).all(|w| w[0] < w[1]), "sorted, unique: {bps:?}");
        // {0, 200, 4000, 5000, 6000} — 0 and 5000 shared.
        assert_eq!(bps.len(), 5, "{bps:?}");
        // The exclude path filters the excluded video's private times
        // while keeping shared ones.
        let without_v1 = l.breakpoints(NodeId(1), Some(VideoId(1)));
        assert!(without_v1.windows(2).all(|w| w[0] < w[1]));
        assert!(!without_v1.contains(&4000.0));
        assert!(without_v1.contains(&0.0), "t = 0 still backed by video 0");
    }

    #[test]
    fn reference_and_timeline_modes_agree_here() {
        let t = topo(4.0);
        let mut l = StorageLedger::new(&t);
        l.add(NodeId(1), VideoId(0), profile(0.0, 5000.0));
        l.add(NodeId(1), VideoId(1), profile(3000.0, 8000.0));
        let mut reference = l.clone();
        reference.set_mode(LedgerMode::Reference);
        for cand in [profile(1000.0, 4000.0), profile(5500.0, 9000.0), profile(8000.0, 8200.0)] {
            for exclude in [None, Some(VideoId(0)), Some(VideoId(7))] {
                assert_eq!(
                    l.fits(&t, NodeId(1), &cand, exclude),
                    reference.fits(&t, NodeId(1), &cand, exclude),
                    "cand {cand:?} exclude {exclude:?}"
                );
                let a = l.peak_with(NodeId(1), &cand, exclude);
                let b = reference.peak_with(NodeId(1), &cand, exclude);
                assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn from_schedule_skips_relays_and_keeps_real_copies() {
        use vod_cost_model::{Request, Residency, Video, VideoSchedule};
        use vod_topology::UserId;
        let t = topo(5.0);
        let video = Video::new(VideoId(0), units::gb(2.0), 1000.0, units::mbps(5.0));
        let catalog = Catalog::new(vec![video]);
        let mut vs = VideoSchedule::new(VideoId(0));
        let r0 = Request { user: UserId(0), video: VideoId(0), start: 0.0 };
        let r1 = Request { user: UserId(1), video: VideoId(0), start: 800.0 };
        let mut real = Residency::begin(NodeId(1), t.warehouse(), r0);
        real.extend(r1);
        vs.residencies.push(real);
        vs.residencies.push(Residency::begin(NodeId(2), t.warehouse(), r0)); // relay
        let mut s = Schedule::new();
        s.upsert(vs);
        let l = StorageLedger::from_schedule(&t, &catalog, &s);
        assert_eq!(l.profile_count(NodeId(1)), 1);
        assert_eq!(l.profile_count(NodeId(2)), 0);
    }
}
