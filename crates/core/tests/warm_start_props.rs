//! Property tests for the cross-cycle warm start: warm-started Ψ must
//! equal the cold-start oracle's Ψ on every cycle across seeds and
//! shard counts, the warm state must never resurrect an expired
//! reservation (neither in the committed book nor in the delivered
//! schedule), and the adaptive shard pick must be a deterministic,
//! region-clamped function of its calibration table.

use proptest::prelude::*;
use vod_core::{
    shard_solve_seeded, shard_solve_warm, CalibPoint, ExecMode, SchedCtx, ShardConfig,
    ShardSelector, WarmState,
};
use vod_cost_model::{Catalog, CostModel, Request, RequestBatch, SpaceProfile};
use vod_topology::{builders, NodeId, Topology};
use vod_workload::{generate_catalog, generate_requests, CatalogConfig, RequestConfig};

const HORIZON: f64 = 24.0 * 3_600.0;

fn world(capacity_gb: f64, seed: u64) -> (Topology, Catalog) {
    let topo =
        builders::paper_fig4(&builders::PaperFig4Config { capacity_gb, ..Default::default() });
    let catalog = generate_catalog(&CatalogConfig::small(30), seed ^ 0xC0FFEE);
    (topo, catalog)
}

/// Cycle `k`'s batch: a fresh workload draw shifted onto `[kH, (k+1)H)`.
fn cycle_batch(topo: &Topology, catalog: &Catalog, seed: u64, k: usize) -> RequestBatch {
    let raw = generate_requests(topo, catalog, &RequestConfig::paper(), seed ^ (k as u64 + 1));
    RequestBatch::new(
        raw.iter().map(|r| Request { start: r.start + k as f64 * HORIZON, ..*r }).collect(),
    )
}

fn request_multiset(batch: &RequestBatch) -> Vec<(u32, u32, u64)> {
    let mut v: Vec<(u32, u32, u64)> =
        batch.iter().map(|r| (r.user.0, r.video.0, r.start.to_bits())).collect();
    v.sort_unstable();
    v
}

fn delivered_multiset(schedule: &vod_cost_model::Schedule) -> Vec<(u32, u32, u64)> {
    let mut v: Vec<(u32, u32, u64)> = schedule
        .videos()
        .flat_map(|vs| {
            vs.delivered_requests()
                .into_iter()
                .map(move |r| (r.user.0, vs.video.0, r.start.to_bits()))
        })
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Rolling three cycles warm produces, on every cycle, the same Ψ
    /// (within 1e-9 relative) as re-solving that cycle from scratch
    /// against the flat committed-profile list — across workload seeds,
    /// shard counts, and capacities.
    #[test]
    fn warm_psi_equals_cold_psi_on_every_cycle(
        seed in 0u64..500,
        shards in 1usize..6,
        capacity_gb in prop_oneof![Just(5.0), Just(8.0)],
    ) {
        let (topo, catalog) = world(capacity_gb, seed);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let cfg = ShardConfig { shards, ..ShardConfig::default() };

        let mut warm = WarmState::new(&topo);
        let mut committed: Vec<(NodeId, SpaceProfile)> = Vec::new();
        for k in 0..3usize {
            let batch = cycle_batch(&topo, &catalog, seed, k);
            let t0 = k as f64 * HORIZON;
            let w = shard_solve_warm(&ctx, &batch, &cfg, &mut warm, t0, ExecMode::Sequential);
            let c = shard_solve_seeded(&ctx, &batch, &cfg, &committed, ExecMode::Sequential);
            prop_assert!(w.sorp.overflow_free && c.sorp.overflow_free, "cycle {k} left overflows");
            let rel = (w.sorp.cost - c.sorp.cost).abs() / c.sorp.cost.max(1.0);
            prop_assert!(
                rel <= 1e-9,
                "cycle {}: warm Ψ {} vs cold Ψ {} (rel {:e})", k, w.sorp.cost, c.sorp.cost, rel
            );
            for r in c.sorp.schedule.residencies() {
                let p = r.profile(catalog.get(r.video));
                if p.peak() > 0.0 {
                    committed.push((r.loc, p));
                }
            }
        }
    }

    /// The warm state never resurrects an expired reservation: after
    /// every cycle, each committed profile still in the book extends
    /// past the cycle's window start (everything drained earlier was
    /// evicted), the eviction accounting balances exactly, and the
    /// delivered schedule serves precisely the cycle's own batch —
    /// nothing from an earlier window leaks in.
    #[test]
    fn warm_state_never_resurrects_expired_reservations(
        seed in 0u64..500,
        shards in 1usize..5,
    ) {
        let (topo, catalog) = world(5.0, seed);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let cfg = ShardConfig { shards, ..ShardConfig::default() };

        let mut warm = WarmState::new(&topo);
        let mut prev_active = 0usize;
        for k in 0..3usize {
            let batch = cycle_batch(&topo, &catalog, seed, k);
            let t0 = k as f64 * HORIZON;
            let out = shard_solve_warm(&ctx, &batch, &cfg, &mut warm, t0, ExecMode::Sequential);

            // Eviction accounting: what begin_cycle kept plus what it
            // dropped is exactly what the previous cycle left behind.
            prop_assert_eq!(
                warm.stats.committed_active + warm.stats.committed_evicted,
                prev_active,
                "cycle {}: eviction accounting leaked profiles", k
            );
            // Every surviving profile (carried or freshly absorbed) still
            // holds space past the window start.
            for (loc, p) in warm.committed().profiles() {
                prop_assert!(
                    p.end > t0,
                    "cycle {}: drained profile [{}, {}] at {} survived eviction",
                    k, p.start, p.end, loc
                );
            }
            // The schedule serves exactly this cycle's batch.
            prop_assert_eq!(
                delivered_multiset(&out.sorp.schedule),
                request_multiset(&batch),
                "cycle {}: delivered requests diverged from the batch", k
            );
            prev_active = warm.committed().active();
        }
    }

    /// The adaptive pick is a pure function of the calibration table:
    /// rebuilt tables pick identically, repeated calls pick identically,
    /// and the pick always lands in `[1, max(regions, 1)]`.
    #[test]
    fn adaptive_pick_is_deterministic_and_clamped(
        points in proptest::collection::vec(
            (1usize..20_000, 1usize..17, 1_000u64..10_000_000_000),
            0..12,
        ),
        requests in 1usize..20_000,
        regions in 0usize..20,
    ) {
        let pts: Vec<CalibPoint> = points
            .iter()
            .map(|&(requests, shards, nanos)| CalibPoint { requests, shards, nanos: nanos as f64 })
            .collect();
        let sel = ShardSelector::from_points(&pts);
        let pick = sel.pick(requests, regions);
        prop_assert_eq!(pick, sel.pick(requests, regions), "repeated pick diverged");
        let rebuilt = ShardSelector::from_points(&pts);
        prop_assert_eq!(pick, rebuilt.pick(requests, regions), "rebuilt table picked differently");
        prop_assert!((1..=regions.max(1)).contains(&pick), "pick {} outside clamp", pick);
        // The bench-seeded table is deterministic too.
        prop_assert_eq!(
            ShardSelector::seeded_from_bench().pick(requests, regions),
            ShardSelector::seeded_from_bench().pick(requests, regions)
        );
    }
}

/// Re-submitting the same window's batch re-prices every video group
/// straight from the carried phase-1 memos, and the result still agrees
/// with the cold oracle solved against the first pass's committed
/// occupancy.
#[test]
fn repeated_batch_reuses_phase1_memos() {
    let (topo, catalog) = world(5.0, 9);
    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &catalog);
    let cfg = ShardConfig::default();
    let batch = cycle_batch(&topo, &catalog, 9, 0);

    let mut warm = WarmState::new(&topo);
    let first = shard_solve_warm(&ctx, &batch, &cfg, &mut warm, 0.0, ExecMode::Sequential);
    assert_eq!(warm.stats.phase1_hits, 0, "a fresh state has nothing to hit");

    let second = shard_solve_warm(&ctx, &batch, &cfg, &mut warm, 0.0, ExecMode::Sequential);
    let groups = batch.groups().count();
    // Every per-shard group re-prices from the memo; videos split across
    // shards contribute one hit per shard, so hits meet or exceed the
    // full-batch group count.
    assert!(
        warm.stats.phase1_hits >= groups,
        "an identical batch must price every group from the memo ({} hits < {} groups)",
        warm.stats.phase1_hits,
        groups
    );
    assert!(warm.stats.trials_carried > 0 || first.sorp.victims.is_empty());

    // Cold oracle for the second pass: from-scratch solve over the first
    // pass's committed occupancy.
    let committed: Vec<(NodeId, SpaceProfile)> = first
        .sorp
        .schedule
        .residencies()
        .map(|r| (r.loc, r.profile(catalog.get(r.video))))
        .filter(|(_, p)| p.peak() > 0.0)
        .collect();
    let cold = shard_solve_seeded(&ctx, &batch, &cfg, &committed, ExecMode::Sequential);
    let rel = (second.sorp.cost - cold.sorp.cost).abs() / cold.sorp.cost.max(1.0);
    assert!(rel <= 1e-9, "repeat Ψ {} vs cold {} (rel {rel:e})", second.sorp.cost, cold.sorp.cost);
}
