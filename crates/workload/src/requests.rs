//! Video-On-Reservation request batch generation.
//!
//! Each user issues a fixed number of reservations per scheduling cycle
//! (the paper's evaluation has 10 users per neighborhood each requesting
//! once). The requested title is drawn from the [`Zipf`] popularity
//! distribution and the reserved presentation time from an arrival
//! pattern over the cycle horizon.

use crate::{SplitMix64, Zipf};
use serde::{Deserialize, Serialize};
use vod_cost_model::{Catalog, Request, RequestBatch, VideoId};
use vod_topology::Topology;

/// When, within the cycle, reservations fall.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Uniform over the whole horizon.
    Uniform,
    /// A symmetric triangular peak centred at `peak_fraction` of the
    /// horizon — a simple model of evening prime time.
    Peak {
        /// Centre of the peak as a fraction of the horizon in `[0, 1]`.
        peak_fraction: f64,
    },
}

/// Parameters for request generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestConfig {
    /// Zipf skew α (Dan–Sitaram convention; 0.271 ≈ video rental).
    pub zipf_alpha: f64,
    /// Length of the scheduling cycle in hours.
    pub horizon_hours: f64,
    /// Reservations issued by each user during the cycle.
    pub requests_per_user: usize,
    /// Arrival-time pattern.
    pub arrivals: ArrivalPattern,
}

impl RequestConfig {
    /// Paper baseline: α = 0.271, one request per user, uniform arrivals
    /// over a 24 h cycle.
    pub fn paper() -> Self {
        Self {
            zipf_alpha: 0.271,
            horizon_hours: 24.0,
            requests_per_user: 1,
            arrivals: ArrivalPattern::Uniform,
        }
    }

    /// Same as [`RequestConfig::paper`] with a different skew.
    pub fn with_alpha(alpha: f64) -> Self {
        Self { zipf_alpha: alpha, ..Self::paper() }
    }
}

impl Default for RequestConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Generate one cycle's request batch for every user of `topo`.
///
/// Video popularity ranks are identified with catalog ids (video 0 is the
/// most popular), matching the synthetic methodology of the paper.
pub fn generate_requests(
    topo: &Topology,
    catalog: &Catalog,
    cfg: &RequestConfig,
    seed: u64,
) -> RequestBatch {
    assert!(cfg.horizon_hours > 0.0, "horizon must be positive");
    assert!(!catalog.is_empty(), "catalog must not be empty");

    let mut rng = SplitMix64::new(seed);
    let zipf = Zipf::new(catalog.len(), cfg.zipf_alpha);
    let horizon = cfg.horizon_hours * 3_600.0;

    let mut requests = Vec::with_capacity(topo.user_count() * cfg.requests_per_user);
    for user in topo.users() {
        for _ in 0..cfg.requests_per_user {
            let video = VideoId(zipf.sample(&mut rng) as u32);
            let start = match cfg.arrivals {
                ArrivalPattern::Uniform => rng.range_f64(0.0, horizon),
                ArrivalPattern::Peak { peak_fraction } => {
                    sample_triangular(&mut rng, horizon, peak_fraction.clamp(0.0, 1.0))
                }
            };
            requests.push(Request { user: user.id, video, start });
        }
    }
    RequestBatch::new(requests)
}

/// Generate a batch in which every neighborhood requests only from its
/// own contiguous slice of the catalog — a **regional catalog**
/// workload.
///
/// The catalog is cut into `⌊titles / populated-neighborhoods⌋`-sized
/// slices, one per intermediate storage that hosts users (in node-id
/// order); each user samples Zipf ranks *within their home slice*.
/// Consequently every video is requested from exactly one neighborhood,
/// which is the regime where region-sharded scheduling under a
/// neighborhood-local placement policy decomposes exactly: the sharded
/// solver's Ψ matches the monolithic solver's up to float summation
/// order (see `vod-core`'s shard module for the full contract). Leftover
/// titles beyond the last full slice are never requested.
///
/// Arrival times follow `cfg.arrivals` exactly as in
/// [`generate_requests`].
pub fn generate_regional_requests(
    topo: &Topology,
    catalog: &Catalog,
    cfg: &RequestConfig,
    seed: u64,
) -> RequestBatch {
    assert!(cfg.horizon_hours > 0.0, "horizon must be positive");

    // Populated neighborhoods in node-id order (storages() is sorted).
    let regions: Vec<_> = topo.storages().filter(|&is| !topo.users_at(is).is_empty()).collect();
    assert!(!regions.is_empty(), "topology has no populated neighborhoods");
    let per = catalog.len() / regions.len();
    assert!(
        per >= 1,
        "catalog of {} titles cannot cover {} neighborhoods",
        catalog.len(),
        regions.len()
    );
    let region_of = |is: vod_topology::NodeId| -> usize {
        regions.iter().position(|&r| r == is).expect("user home is a populated storage")
    };

    let mut rng = SplitMix64::new(seed);
    let zipf = Zipf::new(per, cfg.zipf_alpha);
    let horizon = cfg.horizon_hours * 3_600.0;

    let mut requests = Vec::with_capacity(topo.user_count() * cfg.requests_per_user);
    for user in topo.users() {
        let base = region_of(topo.home_of(user.id)) * per;
        for _ in 0..cfg.requests_per_user {
            let video = VideoId((base + zipf.sample(&mut rng)) as u32);
            let start = match cfg.arrivals {
                ArrivalPattern::Uniform => rng.range_f64(0.0, horizon),
                ArrivalPattern::Peak { peak_fraction } => {
                    sample_triangular(&mut rng, horizon, peak_fraction.clamp(0.0, 1.0))
                }
            };
            requests.push(Request { user: user.id, video, start });
        }
    }
    RequestBatch::new(requests)
}

/// Triangular distribution on `[0, horizon]` with mode at
/// `peak_fraction · horizon` (inverse-CDF sampling).
fn sample_triangular(rng: &mut SplitMix64, horizon: f64, peak_fraction: f64) -> f64 {
    let c = peak_fraction;
    let u = rng.next_f64();
    let x = if u < c { (u * c).sqrt() } else { 1.0 - ((1.0 - u) * (1.0 - c)).sqrt() };
    x * horizon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_catalog, CatalogConfig};
    use vod_topology::builders::{paper_fig4, PaperFig4Config};

    fn setup() -> (Topology, Catalog) {
        let topo = paper_fig4(&PaperFig4Config::default());
        let catalog = generate_catalog(&CatalogConfig::small(100), 1);
        (topo, catalog)
    }

    #[test]
    fn one_request_per_user() {
        let (topo, catalog) = setup();
        let batch = generate_requests(&topo, &catalog, &RequestConfig::paper(), 3);
        assert_eq!(batch.len(), 190);
        // Every user appears exactly once.
        let mut seen = vec![0usize; topo.user_count()];
        for r in batch.iter() {
            seen[r.user.index()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn multiple_requests_per_user() {
        let (topo, catalog) = setup();
        let cfg = RequestConfig { requests_per_user: 3, ..RequestConfig::paper() };
        let batch = generate_requests(&topo, &catalog, &cfg, 3);
        assert_eq!(batch.len(), 570);
    }

    #[test]
    fn starts_within_horizon() {
        let (topo, catalog) = setup();
        let cfg = RequestConfig { horizon_hours: 6.0, ..RequestConfig::paper() };
        let batch = generate_requests(&topo, &catalog, &cfg, 5);
        for r in batch.iter() {
            assert!((0.0..6.0 * 3600.0).contains(&r.start));
        }
    }

    #[test]
    fn videos_within_catalog() {
        let (topo, catalog) = setup();
        let batch = generate_requests(&topo, &catalog, &RequestConfig::paper(), 7);
        for r in batch.iter() {
            assert!(r.video.index() < catalog.len());
        }
    }

    #[test]
    fn lower_alpha_concentrates_requests() {
        let (topo, catalog) = setup();
        let distinct = |alpha: f64| {
            let batch = generate_requests(&topo, &catalog, &RequestConfig::with_alpha(alpha), 11);
            batch.video_count()
        };
        // More skew (smaller α) → fewer distinct titles requested.
        let skewed = distinct(0.0);
        let uniform = distinct(1.0);
        assert!(skewed < uniform, "distinct titles: alpha=0 gave {skewed}, alpha=1 gave {uniform}");
    }

    #[test]
    fn peak_arrivals_cluster_near_mode() {
        let (topo, catalog) = setup();
        let cfg = RequestConfig {
            arrivals: ArrivalPattern::Peak { peak_fraction: 0.75 },
            requests_per_user: 20,
            ..RequestConfig::paper()
        };
        let batch = generate_requests(&topo, &catalog, &cfg, 13);
        let horizon = 24.0 * 3600.0;
        let mean: f64 = batch.iter().map(|r| r.start).sum::<f64>() / batch.len() as f64;
        // Triangular(0, 0.75h, h) has mean (0 + 0.75h + h)/3 ≈ 0.583h.
        assert!((mean / horizon - 0.583).abs() < 0.02, "mean arrival fraction {}", mean / horizon);
        for r in batch.iter() {
            assert!((0.0..horizon).contains(&r.start));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (topo, catalog) = setup();
        let a = generate_requests(&topo, &catalog, &RequestConfig::paper(), 21);
        let b = generate_requests(&topo, &catalog, &RequestConfig::paper(), 21);
        let va: Vec<_> = a.iter().map(|r| (r.user, r.video, r.start)).collect();
        let vb: Vec<_> = b.iter().map(|r| (r.user, r.video, r.start)).collect();
        assert_eq!(va, vb);
        let c = generate_requests(&topo, &catalog, &RequestConfig::paper(), 22);
        let vc: Vec<_> = c.iter().map(|r| (r.user, r.video, r.start)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn regional_requests_are_region_unique() {
        let (topo, catalog) = setup();
        let cfg = RequestConfig { requests_per_user: 4, ..RequestConfig::paper() };
        let batch = generate_regional_requests(&topo, &catalog, &cfg, 17);
        assert_eq!(batch.len(), topo.user_count() * 4);
        // Every video is requested from exactly one neighborhood.
        let mut owner = std::collections::HashMap::new();
        for r in batch.iter() {
            let home = topo.home_of(r.user);
            assert_eq!(
                *owner.entry(r.video).or_insert(home),
                home,
                "video {:?} requested from two neighborhoods",
                r.video
            );
            assert!(r.video.index() < catalog.len());
        }
        // Deterministic per seed.
        let again = generate_regional_requests(&topo, &catalog, &cfg, 17);
        let va: Vec<_> = batch.iter().map(|r| (r.user, r.video, r.start)).collect();
        let vb: Vec<_> = again.iter().map(|r| (r.user, r.video, r.start)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn regional_requests_need_enough_titles() {
        let topo = paper_fig4(&PaperFig4Config::default());
        let catalog = generate_catalog(&CatalogConfig::small(5), 1);
        generate_regional_requests(&topo, &catalog, &RequestConfig::paper(), 0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let (topo, catalog) = setup();
        generate_requests(
            &topo,
            &catalog,
            &RequestConfig { horizon_hours: 0.0, ..RequestConfig::paper() },
            0,
        );
    }
}
