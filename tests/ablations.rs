//! Integration checks for the ablation surfaces: greedy policy knobs,
//! charging bases, and the space-model alternative — each run through the
//! full pipeline including simulator validation.

use vod_paradigm::core::{
    ivsp_solve, ivsp_solve_with, sorp_solve, GreedyPolicy, SchedCtx, SorpConfig,
};
use vod_paradigm::cost_model::SpaceModel;
use vod_paradigm::prelude::*;
use vod_paradigm::simulator::{simulate, SimOptions};
use vod_paradigm::workload::{CatalogConfig, RequestConfig, Workload};

fn world(seed: u64) -> (Topology, Workload) {
    let topo = builders::paper_fig4(&builders::PaperFig4Config::default());
    let wl = Workload::generate(
        &topo,
        &CatalogConfig::small(60),
        &RequestConfig { requests_per_user: 2, ..RequestConfig::paper() },
        seed,
    );
    (topo, wl)
}

/// The gradual-fill space model goes through the whole pipeline and
/// validates in the simulator, including the measured-cost cross-check.
#[test]
fn gradual_fill_pipeline_is_valid_end_to_end() {
    let (topo, wl) = world(1);
    let model = CostModel::per_hop().with_space_model(SpaceModel::GradualFill);
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
    let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
    assert!(outcome.overflow_free);
    let report =
        simulate(&topo, &wl.catalog, &model, &outcome.schedule, &SimOptions::strict(&wl.requests));
    assert!(report.is_valid(), "violations: {:?}", report.violations);
    assert!((report.metrics.total_cost - outcome.cost).abs() < 1e-6 * outcome.cost.max(1.0));
}

/// The two space models price the *same* schedule differently (the paper's
/// γ-approximation vs exact drain accounting) while agreeing on the
/// network component.
#[test]
fn space_models_differ_only_in_storage_component() {
    let (topo, wl) = world(2);
    let instant = CostModel::per_hop();
    let gradual = CostModel::per_hop().with_space_model(SpaceModel::GradualFill);
    let ctx = SchedCtx::new(&topo, &instant, &wl.catalog);
    let schedule = ivsp_solve(&ctx, &wl.requests);

    let (net_i, sto_i) = instant.schedule_cost_split(&topo, &wl.catalog, &schedule);
    let (net_g, sto_g) = gradual.schedule_cost_split(&topo, &wl.catalog, &schedule);
    assert!((net_i - net_g).abs() < 1e-9, "network term must not depend on the space model");
    assert!(
        (sto_i - sto_g).abs() > 1e-6,
        "storage terms should differ between models ({sto_i} vs {sto_g})"
    );
    assert!(sto_i > 0.0 && sto_g > 0.0);
}

/// Greedy policy restrictions are never cheaper than the full search, and
/// the no-caching policy prices exactly like the network-only baseline.
#[test]
fn greedy_policies_order_as_expected() {
    let (topo, wl) = world(3);
    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);

    let full = ctx.schedule_cost(&ivsp_solve(&ctx, &wl.requests));
    let local_only = ctx.schedule_cost(&ivsp_solve_with(
        &ctx,
        &wl.requests,
        GreedyPolicy { allow_remote_placement: false, ..Default::default() },
    ));
    let no_caching = ctx.schedule_cost(&ivsp_solve_with(
        &ctx,
        &wl.requests,
        GreedyPolicy { allow_new_caches: false, ..Default::default() },
    ));
    let network_only =
        ctx.schedule_cost(&vod_paradigm::core::baselines::network_only(&ctx, &wl.requests));

    assert!(full <= local_only + 1e-6, "{full} vs local-only {local_only}");
    assert!(local_only <= no_caching + 1e-6, "{local_only} vs no-caching {no_caching}");
    assert!(
        (no_caching - network_only).abs() < 1e-6,
        "no-caching greedy must equal the network-only baseline"
    );
}

/// End-to-end charging through the full pipeline validates in the
/// simulator (the cost cross-check is per-hop-only and must auto-skip).
#[test]
fn end_to_end_basis_simulates_cleanly() {
    let (topo, wl) = world(4);
    let model = CostModel::end_to_end(&topo);
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
    let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
    let report =
        simulate(&topo, &wl.catalog, &model, &outcome.schedule, &SimOptions::strict(&wl.requests));
    assert!(report.is_valid(), "violations: {:?}", report.violations);
}

/// The gradual-fill scheduler caches at least as aggressively: its
/// extension charge for long residencies is lower (size·Δ vs
/// size·(Δ+P/2)), so the schedule's storage share can only grow.
#[test]
fn gradual_fill_encourages_caching() {
    let (topo, wl) = world(5);
    let instant = CostModel::per_hop();
    let gradual = CostModel::per_hop().with_space_model(SpaceModel::GradualFill);

    let ctx_i = SchedCtx::new(&topo, &instant, &wl.catalog);
    let ctx_g = SchedCtx::new(&topo, &gradual, &wl.catalog);
    let cached_i =
        ivsp_solve(&ctx_i, &wl.requests).residencies().filter(|r| r.duration() > 0.0).count();
    let cached_g =
        ivsp_solve(&ctx_g, &wl.requests).residencies().filter(|r| r.duration() > 0.0).count();
    // Not guaranteed strictly greater in every instance, but it must never
    // collapse: allow equality, forbid a large drop.
    assert!(
        cached_g + 2 >= cached_i,
        "gradual fill should cache comparably: {cached_g} vs {cached_i}"
    );
}
