//! Property tests for the extension surfaces: trace round-trips, the
//! generalised space profile, link ledgers, bandwidth-aware scheduling,
//! and the exact solver.

use proptest::prelude::*;
use vod_paradigm::core::{
    bandwidth_aware_solve, find_optimal_video_schedule, find_video_schedule, SchedCtx,
};
use vod_paradigm::cost_model::{SpaceModel, SpaceProfile};
use vod_paradigm::prelude::*;
use vod_paradigm::workload::{trace, SplitMix64};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Request batches survive a CSV round trip exactly.
    #[test]
    fn trace_round_trip_requests(
        rows in proptest::collection::vec((0u32..200, 0u32..500, 0.0f64..1e6), 0..60)
    ) {
        let reqs: Vec<Request> = rows
            .iter()
            .map(|&(u, v, t)| Request { user: UserId(u), video: VideoId(v), start: t })
            .collect();
        let batch = RequestBatch::new(reqs);
        let csv = trace::requests_to_csv(&batch);
        let back = trace::requests_from_csv(&csv).unwrap();
        let a: Vec<_> = batch.iter().map(|r| (r.user, r.video, r.start)).collect();
        let b: Vec<_> = back.iter().map(|r| (r.user, r.video, r.start)).collect();
        prop_assert_eq!(a, b);
    }

    /// Under both space models the profile integral equals its windowed
    /// integral over the support, space is non-negative everywhere, and
    /// the plateau is the pointwise maximum.
    #[test]
    fn space_profile_invariants_both_models(
        t_s in 0.0f64..1e5,
        dur in 0.0f64..1e5,
        size in 1.0f64..1e10,
        playback in 1.0f64..1e4,
        probe in 0.0f64..1.0,
    ) {
        for model in [SpaceModel::InstantReservation, SpaceModel::GradualFill] {
            let p = SpaceProfile::with_model(t_s, t_s + dur, size, playback, model);
            let full = p.integral();
            let windowed = p.integral_over(p.start - 1.0, p.end + 1.0);
            prop_assert!((full - windowed).abs() <= 1e-9 * full.max(1.0), "{model:?}");
            let t = p.start + probe * (p.end - p.start).max(1e-9);
            let s = p.space_at(t);
            prop_assert!(s >= 0.0 && s <= p.peak() + 1e-9, "{model:?}: space {s}");
        }
    }

    /// The two space models share the same peak (γ·size) and the same
    /// support endpoints (occupancy ends at t_f + P either way), and the
    /// instant model dominates gradual fill throughout the residency
    /// interval [t_s, t_f] (it reserves the full plateau from the start).
    /// During the drain tail the ordering can flip — the gradual plateau
    /// outlives the instant model's drain start on short residencies.
    #[test]
    fn space_models_share_peak_and_support(
        t_s in 0.0f64..1e4,
        dur in 0.0f64..1e4,
        size in 1.0f64..1e9,
        playback in 1.0f64..1e4,
        frac in 0.0f64..1.0,
    ) {
        let inst = SpaceProfile::with_model(t_s, t_s + dur, size, playback,
                                            SpaceModel::InstantReservation);
        let grad = SpaceProfile::with_model(t_s, t_s + dur, size, playback,
                                            SpaceModel::GradualFill);
        prop_assert!((inst.peak() - grad.peak()).abs() < 1e-9);
        prop_assert!((inst.end - grad.end).abs() < 1e-6 * inst.end.max(1.0),
                     "supports end together: {} vs {}", inst.end, grad.end);
        // Domination inside the residency interval itself.
        let t = t_s + frac * dur;
        prop_assert!(
            inst.space_at(t) + 1e-9 >= grad.space_at(t),
            "at t={t} in [t_s, t_f]: instant {} < gradual {}",
            inst.space_at(t),
            grad.space_at(t)
        );
    }

    /// The exact solver never exceeds the greedy and its schedule prices
    /// at exactly the claimed optimum.
    #[test]
    fn exact_solver_invariants(seed in 0u64..400) {
        let mut rng = SplitMix64::new(seed);
        let cfg = builders::GenConfig {
            storages: 2 + (rng.next_u64() % 3) as usize,
            nrate_per_gb: rng.range_f64(50.0, 900.0),
            srate_per_gb_hour: rng.range_f64(0.0, 50.0),
            capacity_gb: 100.0,
            users_per_neighborhood: 1,
        };
        let topo = builders::random_connected(&cfg, 2, seed);
        let catalog = vod_paradigm::workload::generate_catalog(
            &vod_paradigm::workload::CatalogConfig::small(1),
            seed,
        );
        let n_req = 2 + (rng.next_u64() % 3) as usize;
        let mut requests: Vec<Request> = (0..n_req)
            .map(|_| Request {
                user: UserId((rng.next_u64() % topo.user_count() as u64) as u32),
                video: VideoId(0),
                start: rng.range_f64(0.0, 86_400.0),
            })
            .collect();
        requests.sort_by(|a, b| a.start.total_cmp(&b.start));

        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let exact = find_optimal_video_schedule(&ctx, &requests);
        let greedy = ctx.video_cost(&find_video_schedule(&ctx, &requests));
        prop_assert!(exact.cost <= greedy * (1.0 + 1e-9) + 1e-9);
        prop_assert!(
            (ctx.video_cost(&exact.schedule) - exact.cost).abs()
                <= 1e-9 * exact.cost.max(1.0)
        );
        prop_assert_eq!(exact.schedule.delivery_count(), requests.len());
    }

    /// Heat-metric building blocks: the improved period never exceeds
    /// either window, ΔS never exceeds plateau × improved period, and all
    /// four heats are non-negative.
    #[test]
    fn heat_building_blocks_are_bounded(
        of_start in 0.0f64..1e5,
        of_len in 0.1f64..1e5,
        t_s in 0.0f64..1e5,
        dur in 0.0f64..1e5,
        size in 1.0f64..1e10,
        playback in 1.0f64..1e4,
        overhead in -100.0f64..1e5,
    ) {
        use vod_paradigm::core::{heat_of, HeatMetric, Interval, Overflow};
        let of = Overflow {
            loc: NodeId(1),
            window: Interval::new(of_start, of_start + of_len),
            peak_excess: 1.0,
        };
        let p = SpaceProfile::new(t_s, t_s + dur, size, playback);
        let x = vod_paradigm::core::heat::improved_period(&of, &p);
        prop_assert!(x >= 0.0);
        prop_assert!(x <= of_len + 1e-9);
        prop_assert!(x <= (p.end - p.start) + 1e-9);
        let ds = vod_paradigm::core::heat::delta_s(&of, &p);
        prop_assert!(ds >= 0.0);
        prop_assert!(ds <= p.peak() * x + 1e-6 * p.peak().max(1.0));
        for m in HeatMetric::ALL {
            prop_assert!(heat_of(m, &of, &p, overhead) >= 0.0, "{m}");
        }
    }

    /// The bandwidth-aware scheduler conserves requests (admitted +
    /// blocked = offered) and never overloads a declared link.
    #[test]
    fn bandwidth_aware_conserves_and_respects_links(
        seed in 0u64..40,
        streams in 1.0f64..12.0,
    ) {
        let cfg = builders::GenConfig {
            storages: 5,
            users_per_neighborhood: 2,
            ..Default::default()
        };
        let mut topo = builders::random_connected(&cfg, 3, seed);
        topo.set_uniform_bandwidth(Some(units::mbps(5.0) * streams)).unwrap();
        let catalog = vod_paradigm::workload::generate_catalog(
            &vod_paradigm::workload::CatalogConfig::small(10),
            seed ^ 0xF00D,
        );
        let requests = vod_paradigm::workload::generate_requests(
            &topo,
            &catalog,
            &vod_paradigm::workload::RequestConfig::with_alpha(0.1),
            seed,
        );
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &catalog);
        let out = bandwidth_aware_solve(&ctx, &requests);
        prop_assert_eq!(
            out.schedule.delivery_count() + out.blocked.len(),
            requests.len()
        );
        prop_assert!(vod_paradigm::core::bandwidth::detect_link_overloads(
            &topo, &catalog, &out.schedule
        )
        .is_empty());
    }
}
