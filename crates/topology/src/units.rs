//! Unit conversions between the paper's "arbitrary charging units" and the
//! base units used internally (bytes, seconds, dollars).
//!
//! The paper (Table 4) quotes network charging rates "per GByte" and storage
//! charging rates "per GByte·sec"-ish without committing to a real tariff;
//! §5.1 explicitly says the values stand in for an arbitrary charging
//! system. We fix the following interpretable convention, chosen so that the
//! worked example of Fig. 2 reproduces to the cent (see the `vod-cost-model`
//! golden tests):
//!
//! * `nrate` is quoted in **$/GB per hop** (or end-to-end),
//! * `srate` is quoted in **$/(GB·hour)**.

/// One gigabyte, in bytes (decimal convention, matching the paper's
/// "2.5 Giga Bytes" arithmetic).
pub const GB: f64 = 1_000_000_000.0;

/// One megabit, in bytes (used for bandwidth figures quoted in Mbps).
pub const MEGABIT: f64 = 1_000_000.0 / 8.0;

/// Seconds per hour.
pub const HOUR: f64 = 3_600.0;

/// Seconds per minute.
pub const MINUTE: f64 = 60.0;

/// Convert a network charging rate quoted in $/GB into $/byte.
#[inline]
pub fn nrate_per_gb(dollars_per_gb: f64) -> f64 {
    dollars_per_gb / GB
}

/// Convert a storage charging rate quoted in $/(GB·hour) into $/(byte·s).
#[inline]
pub fn srate_per_gb_hour(dollars_per_gb_hour: f64) -> f64 {
    dollars_per_gb_hour / GB / HOUR
}

/// Convert a bandwidth quoted in Mbps into bytes/s.
#[inline]
pub fn mbps(megabits_per_second: f64) -> f64 {
    megabits_per_second * MEGABIT
}

/// Convert a size quoted in GB into bytes.
#[inline]
pub fn gb(gigabytes: f64) -> f64 {
    gigabytes * GB
}

/// Convert a duration quoted in minutes into seconds.
#[inline]
pub fn minutes(m: f64) -> f64 {
    m * MINUTE
}

/// Convert a duration quoted in hours into seconds.
#[inline]
pub fn hours(h: f64) -> f64 {
    h * HOUR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabyte_is_decimal() {
        assert_eq!(GB, 1e9);
        assert_eq!(gb(2.5), 2.5e9);
    }

    #[test]
    fn mbps_converts_bits_to_bytes() {
        // 8 Mbps == 1 MB/s
        assert_eq!(mbps(8.0), 1_000_000.0);
    }

    #[test]
    fn nrate_round_trip() {
        // $300/GB, applied to 1 GB, is $300.
        let r = nrate_per_gb(300.0);
        assert!((r * GB - 300.0).abs() < 1e-9);
    }

    #[test]
    fn srate_round_trip() {
        // $1/(GB·h) applied to 2.5 GB for 3.75 h is $9.375 — the storage
        // cost in the paper's Fig. 2 schedule S2.
        let r = srate_per_gb_hour(1.0);
        let cost = r * gb(2.5) * hours(3.75);
        assert!((cost - 9.375).abs() < 1e-9);
    }

    #[test]
    fn time_helpers() {
        assert_eq!(minutes(90.0), 5_400.0);
        assert_eq!(hours(1.5), 5_400.0);
    }
}
