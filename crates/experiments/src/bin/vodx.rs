//! `vodx` — run the paper's experiments from the command line.
//!
//! ```text
//! vodx <fig5|fig6|fig7|fig8|fig9|table5|gap|bandwidth|cycles|inspect|all>
//!      [--fast] [--out DIR] [--rpu N]
//! ```
//!
//! Prints each experiment as an aligned text table (the rows the paper
//! plots) and, with `--out`, also writes CSV/text outputs for replotting.

use std::path::PathBuf;
use std::process::ExitCode;
use vod_core::{ivsp_solve_priced, sorp_solve_priced, ExecMode, SchedCtx, SorpConfig};
use vod_cost_model::CostModel;
use vod_experiments::{
    cycles, ext, figures, render_csv, render_table, service, table5, EnvParams, Preset,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = Preset::Paper;
    let mut out_dir: Option<PathBuf> = None;
    let mut rpu: Option<usize> = None;
    let mut cold = false;
    let mut adaptive = false;
    let mut burst: Option<usize> = None;
    let mut budget_ns: Option<f64> = None;
    let mut record: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => preset = Preset::Fast,
            "--cold" => cold = true,
            "--adaptive" => adaptive = true,
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--rpu" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => rpu = Some(n),
                None => {
                    eprintln!("--rpu needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--burst" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => burst = Some(n),
                None => {
                    eprintln!("--burst needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--budget-ns" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget_ns = Some(n),
                None => {
                    eprintln!("--budget-ns needs a number argument");
                    return ExitCode::FAILURE;
                }
            },
            "--record" => match it.next() {
                Some(path) => record = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--record needs a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("no experiment given\n{}", usage());
        return ExitCode::FAILURE;
    }
    // `trace FILE` — dump and summarize a flight recording, no solving.
    if targets[0] == "trace" {
        let Some(path) = targets.get(1) else {
            eprintln!("trace needs a recording file argument\n{}", usage());
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match vod_obs::Recording::from_jsonl(&text) {
            Ok(rec) => {
                println!("# Flight recording {path}");
                print!("{}", rec.summarize());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("{path} is not a valid recording: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table5",
            "gap",
            "bandwidth",
            "cycles",
            "service",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for target in &targets {
        let started = std::time::Instant::now();
        match target.as_str() {
            "inspect" => {
                let params = EnvParams::for_preset(preset);
                let (topo, wl) = params.build();
                let model = CostModel::per_hop();
                let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
                let outcome = sorp_solve_priced(
                    &ctx,
                    ivsp_solve_priced(&ctx, &wl.requests),
                    &SorpConfig::default(),
                    &[],
                    ExecMode::default(),
                );
                let analysis = vod_simulator::analysis::ScheduleAnalysis::of(
                    &topo,
                    &wl.catalog,
                    &model,
                    &outcome.schedule,
                );
                println!("# Baseline-cell schedule inspection");
                println!("{}", analysis.render(&topo, 5));
                let busiest = analysis
                    .storages
                    .iter()
                    .max_by(|a, b| a.peak_utilization.total_cmp(&b.peak_utilization))
                    .expect("storages exist")
                    .loc;
                println!(
                    "{}",
                    vod_simulator::render::occupancy_timeline(
                        &topo,
                        &wl.catalog,
                        &outcome.schedule,
                        busiest,
                        16,
                        40
                    )
                );
                if let Some(dir) = &out_dir {
                    let path = dir.join("topology.dot");
                    if let Err(e) = std::fs::write(&path, vod_topology::dot::to_dot(&topo)) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "cycles" => {
                let params = EnvParams::for_preset(preset);
                let n = if preset == Preset::Fast { 3 } else { 7 };
                let cfg = cycles::RollingConfig {
                    use_cold_start: cold,
                    adaptive,
                    ..cycles::RollingConfig::default()
                };
                let recorder = match &record {
                    Some(_) => vod_obs::Recorder::enabled(),
                    None => vod_obs::Recorder::disabled(),
                };
                let r = cycles::rolling_horizon_recorded(&params, n, &cfg, &recorder);
                println!("{}", r.render());
                if let Some(path) = &record {
                    if let Err(e) = write_recording(path, &recorder) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(dir) = &out_dir {
                    let path = dir.join("cycles.txt");
                    if let Err(e) = std::fs::write(&path, r.render()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "service" => {
                let params = EnvParams::for_preset(preset);
                let n = if preset == Preset::Fast { 4 } else { 8 };
                let sp = service::ServiceParams {
                    queue_bound: Some(4 * params.users_per_neighborhood * 19),
                    budget_ns: budget_ns.or(Some(500.0 * 9_700.0)),
                    burst: vec![(1, burst.unwrap_or(4))],
                    ..service::ServiceParams::default()
                };
                let recorder = match &record {
                    Some(_) => vod_obs::Recorder::enabled(),
                    None => vod_obs::Recorder::disabled(),
                };
                let (r, report, _) = service::service_horizon_recorded(&params, n, &sp, &recorder);
                println!("{}", r.render());
                println!("{}", report.render());
                if let Some(path) = &record {
                    if let Err(e) = write_recording(path, &recorder) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(dir) = &out_dir {
                    let path = dir.join("service.txt");
                    let body = format!("{}\n{}", r.render(), report.render());
                    if let Err(e) = std::fs::write(&path, body) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "gap" => {
                let r = ext::gap(preset);
                println!("{}", r.render());
                if let Some(dir) = &out_dir {
                    let path = dir.join("gap.txt");
                    if let Err(e) = std::fs::write(&path, r.render()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "bandwidth" => {
                let r = ext::bandwidth(preset);
                println!("{}", r.render());
                if let Some(dir) = &out_dir {
                    let path = dir.join("bandwidth.txt");
                    if let Err(e) = std::fs::write(&path, r.render()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "table5" => {
                let r = table5::run_with(preset, rpu);
                println!("{}", r.render());
                if let Some(dir) = &out_dir {
                    let path = dir.join("table5.txt");
                    if let Err(e) = std::fs::write(&path, r.render()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            fig => match figures::by_id(fig, preset) {
                Some(result) => {
                    println!("{}", render_table(&result));
                    if let Some(dir) = &out_dir {
                        let path = dir.join(format!("{fig}.csv"));
                        if let Err(e) = std::fs::write(&path, render_csv(&result)) {
                            eprintln!("cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => {
                    eprintln!("unknown experiment {fig}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
        eprintln!("[{target} done in {:.1}s]", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn write_recording(path: &PathBuf, recorder: &vod_obs::Recorder) -> Result<(), String> {
    let rec = recorder.recording().expect("recorder was enabled for --record");
    std::fs::write(path, rec.to_jsonl())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("[flight recording: {} events -> {}]", rec.events.len(), path.display());
    Ok(())
}

fn usage() -> &'static str {
    "usage: vodx <fig5|fig6|fig7|fig8|fig9|table5|gap|bandwidth|cycles|service|inspect|all> [--fast] [--out DIR]\n\
     \x20      vodx trace FILE\n\
     \n\
     Reproduces the evaluation of Won & Srivastava (HPDC 1997).\n\
     --fast   use reduced grids/workload (smoke run)\n\
     --out D  additionally write CSV/text outputs into directory D\n\
     --rpu N  reservations per user per cycle for table5 (default 2)\n\
     --cold     cycles: re-solve each cycle from scratch (oracle path)\n\
     --adaptive cycles: let the warm selector pick the shard count\n\
     --burst N     service: arrival multiplier for the burst cycle (default 4)\n\
     --budget-ns B service: per-cycle deadline budget in simulated ns\n\
     --record F    cycles/service: write a JSONL flight recording to F\n\
     trace F       dump + summarize a recording written by --record"
}
