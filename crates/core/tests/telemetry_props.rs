//! Recorder-transparency properties: attaching the flight recorder to a
//! scheduling context must never change a single scheduling decision.
//! Schedules, costs, and service accounting are compared bit-for-bit
//! between recorder-off and recorder-on runs across seeds and
//! [`ExecMode`]s, and the captured events must agree with the stats the
//! loop reports.

use proptest::prelude::*;
use vod_core::{service_run, ExecMode, SchedCtx, ServiceConfig, ShardConfig};
use vod_core::{shard_solve, Rung};
use vod_cost_model::{Catalog, CostModel};
use vod_obs::Recorder;
use vod_topology::builders::{paper_fig4, PaperFig4Config};
use vod_topology::Topology;
use vod_workload::{
    generate_arrivals, generate_catalog, ArrivalConfig, CatalogConfig, RequestConfig, Workload,
};

fn world(seed: u64) -> (Topology, Catalog) {
    let topo = paper_fig4(&PaperFig4Config { capacity_gb: 5.0, ..Default::default() });
    let catalog = generate_catalog(&CatalogConfig::small(40), seed);
    (topo, catalog)
}

/// Run the service loop twice — recorder off, then on — and assert the
/// outcomes are bit-identical. Returns the enabled recorder's capture
/// plus the outcomes for follow-up checks.
fn run_twice(
    seed: u64,
    mode: ExecMode,
    cfg: &ServiceConfig,
) -> (vod_obs::Recording, Vec<vod_core::ServiceCycleOutcome>, vod_core::ServiceReport) {
    let (topo, catalog) = world(seed ^ 0xBEEF);
    let model = CostModel::per_hop();
    let arrivals = generate_arrivals(
        &topo,
        &catalog,
        &ArrivalConfig { cycles: 2, ..ArrivalConfig::default() },
        seed,
    );

    let ctx_off = SchedCtx::new(&topo, &model, &catalog);
    let (out_off, rep_off) =
        service_run(&ctx_off, &arrivals, cfg, 3, mode).expect("empty plan validates");

    let recorder = Recorder::enabled();
    let ctx_on = SchedCtx::new(&topo, &model, &catalog).with_recorder(recorder.clone());
    let (out_on, rep_on) =
        service_run(&ctx_on, &arrivals, cfg, 3, mode).expect("empty plan validates");

    assert_eq!(out_off.len(), out_on.len());
    for (a, b) in out_off.iter().zip(&out_on) {
        assert_eq!(a.stats, b.stats, "cycle {} accounting diverged", a.stats.cycle);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "cycle {} Ψ diverged", a.stats.cycle);
        assert_eq!(a.served, b.served);
        assert_eq!(a.shed_now, b.shed_now);
        assert_eq!(
            format!("{:?}", a.schedule),
            format!("{:?}", b.schedule),
            "cycle {} schedule diverged",
            a.stats.cycle
        );
    }
    assert_eq!(rep_off.served, rep_on.served);
    assert_eq!(rep_off.shed_events, rep_on.shed_events);
    let recording = recorder.recording().expect("enabled");
    (recording, out_on, rep_on)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Recorder on vs off: identical schedules and Ψ for arbitrary
    /// seeds under both exec modes, with and without a budget ladder.
    #[test]
    fn recorder_never_changes_the_schedule(seed in 0u64..1_000_000, tight in any::<bool>()) {
        let cfg = ServiceConfig {
            budget_ns: tight.then_some(120.0 * 9_700.0),
            ..ServiceConfig::default()
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let (recording, outcomes, _) = run_twice(seed, mode, &cfg);
            // Every cycle produced exactly one cycle_end event whose
            // fields mirror the loop's own accounting.
            let ends: Vec<_> = recording.events_of("cycle_end").collect();
            prop_assert_eq!(ends.len(), outcomes.len());
            for (ev, out) in ends.iter().zip(&outcomes) {
                let s = &out.stats;
                prop_assert_eq!(ev.cycle, s.cycle as u64);
                prop_assert_eq!(ev.str("rung"), Some(s.rung.label()));
                prop_assert_eq!(ev.u64("served"), Some(s.served as u64));
                prop_assert_eq!(ev.u64("shed"), Some(s.shed as u64));
                prop_assert_eq!(ev.u64("sim_ns"), Some(s.sim_ns));
                prop_assert_eq!(ev.f64("cost").map(f64::to_bits), Some(out.cost.to_bits()));
            }
        }
    }

    /// Both exec modes capture the *same* recording (the simulated-time
    /// determinism contract): event streams compare equal, which also
    /// ignores the wall-ns side field by construction.
    #[test]
    fn recordings_are_exec_mode_invariant(seed in 0u64..1_000_000) {
        let cfg = ServiceConfig { budget_ns: Some(200.0 * 9_700.0), ..ServiceConfig::default() };
        let (seq, _, _) = run_twice(seed, ExecMode::Sequential, &cfg);
        let (par, _, _) = run_twice(seed, ExecMode::Parallel, &cfg);
        prop_assert_eq!(seq, par);
    }
}

/// The plain sharded solver is recorder-transparent too (it records a
/// `shard_solve` event per call), independent of the service loop.
#[test]
fn shard_solve_is_recorder_transparent() {
    let topo = paper_fig4(&PaperFig4Config { capacity_gb: 5.0, ..Default::default() });
    let wl = Workload::generate(&topo, &CatalogConfig::small(40), &RequestConfig::paper(), 77);
    let model = CostModel::per_hop();
    let cfg = ShardConfig::default();

    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
    let cold = shard_solve(&ctx, &wl.requests, &cfg, ExecMode::Sequential);

    let recorder = Recorder::enabled();
    let ctx_on = SchedCtx::new(&topo, &model, &wl.catalog).with_recorder(recorder.clone());
    let hot = shard_solve(&ctx_on, &wl.requests, &cfg, ExecMode::Sequential);

    assert_eq!(cold.sorp.cost.to_bits(), hot.sorp.cost.to_bits());
    assert_eq!(cold.sorp.iterations, hot.sorp.iterations);
    assert_eq!(format!("{:?}", cold.sorp.schedule), format!("{:?}", hot.sorp.schedule));

    let recording = recorder.recording().expect("enabled");
    let ev = recording.events_of("shard_solve").next().expect("one solve event");
    assert_eq!(ev.u64("iterations"), Some(hot.sorp.iterations as u64));
    assert_eq!(ev.u64("trials_run"), Some(hot.sorp.trials_run as u64));
    assert_eq!(ev.u64("trials_cached"), Some(hot.sorp.trials_cached as u64));
    assert_eq!(ev.u64("nodes_rescanned"), Some(hot.sorp.nodes_rescanned as u64));
    assert_eq!(ev.f64("cost").map(f64::to_bits), Some(hot.sorp.cost.to_bits()));
}

/// The ladder's rung decisions land in the recording: a tight budget
/// must leave Full at least once, and every rung event's label matches
/// the cycle stats.
#[test]
fn rung_events_trace_the_ladder() {
    let cfg = ServiceConfig { budget_ns: Some(40.0 * 4_200.0), ..ServiceConfig::default() };
    let (recording, outcomes, _) = run_twice(4242, ExecMode::Sequential, &cfg);
    let rungs: Vec<_> = recording.events_of("rung").collect();
    assert_eq!(rungs.len(), outcomes.len());
    for (ev, out) in rungs.iter().zip(&outcomes) {
        assert_eq!(ev.str("rung"), Some(out.stats.rung.label()));
    }
    assert!(
        outcomes.iter().any(|o| o.stats.rung != Rung::Full),
        "tight budget must engage the ladder"
    );
}
