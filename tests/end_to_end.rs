//! End-to-end integration: workload generation → two-phase scheduling →
//! simulator validation, across seeds and environments.

use vod_paradigm::core::{
    baselines, detect_overflows, ivsp_solve, sorp_solve, HeatMetric, SchedCtx, SorpConfig,
    StorageLedger,
};
use vod_paradigm::prelude::*;
use vod_paradigm::simulator::{simulate, SimOptions};
use vod_paradigm::workload::{CatalogConfig, RequestConfig, Workload};

fn paper_world(capacity_gb: f64, alpha: f64, seed: u64) -> (Topology, Workload) {
    let topo =
        builders::paper_fig4(&builders::PaperFig4Config { capacity_gb, ..Default::default() });
    let wl = Workload::generate(
        &topo,
        &CatalogConfig::small(80),
        &RequestConfig::with_alpha(alpha),
        seed,
    );
    (topo, wl)
}

#[test]
fn pipeline_is_valid_across_seeds_and_capacities() {
    for seed in [1, 2, 3] {
        for capacity in [5.0, 8.0, 14.0] {
            let (topo, wl) = paper_world(capacity, 0.271, seed);
            let model = CostModel::per_hop();
            let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
            let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
            assert!(outcome.overflow_free, "seed {seed} cap {capacity}");
            let report = simulate(
                &topo,
                &wl.catalog,
                &model,
                &outcome.schedule,
                &SimOptions::strict(&wl.requests),
            );
            assert!(report.is_valid(), "seed {seed} cap {capacity}: {:?}", report.violations);
            assert_eq!(report.metrics.deliveries, wl.requests.len());
        }
    }
}

#[test]
fn two_phase_beats_network_only_at_paper_baseline() {
    for seed in [1, 2, 3, 4] {
        let (topo, wl) = paper_world(5.0, 0.271, seed);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
        let two_phase = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
        let direct = ctx.schedule_cost(&baselines::network_only(&ctx, &wl.requests));
        assert!(
            two_phase.cost <= direct + 1e-6,
            "seed {seed}: two-phase {} vs direct {direct}",
            two_phase.cost
        );
    }
}

#[test]
fn resolution_cost_is_bounded_and_nonnegative() {
    for seed in [1, 2, 3] {
        let (topo, wl) = paper_world(5.0, 0.1, seed);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
        let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
        let rel = outcome.relative_cost_increase();
        assert!(rel >= -1e-9, "resolution made the schedule cheaper by {rel}");
        // The paper observes ≤34 % worst-case; leave generous headroom but
        // catch pathological blow-ups.
        assert!(rel < 1.0, "resolution more than doubled the cost: {rel}");
    }
}

#[test]
fn resolved_ledger_is_overflow_free_under_every_metric() {
    let (topo, wl) = paper_world(5.0, 0.1, 9);
    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
    let phase1 = ivsp_solve(&ctx, &wl.requests);
    for metric in HeatMetric::ALL {
        let outcome = sorp_solve(&ctx, &phase1, &SorpConfig::with_metric(metric));
        let ledger = StorageLedger::from_schedule(&topo, &wl.catalog, &outcome.schedule);
        assert!(detect_overflows(&topo, &ledger).is_empty(), "metric {metric} left an overflow");
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let (topo, wl) = paper_world(5.0, 0.271, 77);
        let model = CostModel::per_hop();
        let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
        let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
        (outcome.cost, outcome.iterations, outcome.victims.len())
    };
    assert_eq!(run(), run());
}

#[test]
fn end_to_end_charging_basis_also_works() {
    let (topo, wl) = paper_world(8.0, 0.271, 5);
    let model = CostModel::end_to_end(&topo);
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
    let outcome = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
    assert!(outcome.overflow_free);
    // End-to-end charging never exceeds per-hop charging for the same
    // schedule (it prices every stream at the cheapest route).
    let per_hop = CostModel::per_hop();
    let e2e_cost = model.schedule_cost(&topo, &wl.catalog, &outcome.schedule);
    let hop_cost = per_hop.schedule_cost(&topo, &wl.catalog, &outcome.schedule);
    assert!(e2e_cost <= hop_cost + 1e-6);
}

#[test]
fn cache_local_baseline_overflows_where_two_phase_does_not() {
    // The naive policy ignores capacity; on tight stores it must produce
    // overflow that the two-phase scheduler avoids.
    let (topo, wl) = paper_world(5.0, 0.1, 3);
    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);

    let naive = baselines::cache_local_always(&ctx, &wl.requests);
    let naive_ledger = StorageLedger::from_schedule(&topo, &wl.catalog, &naive);
    assert!(
        !detect_overflows(&topo, &naive_ledger).is_empty(),
        "expected the naive policy to overflow 5 GB stores"
    );

    let resolved = sorp_solve(&ctx, &ivsp_solve(&ctx, &wl.requests), &SorpConfig::default());
    let ledger = StorageLedger::from_schedule(&topo, &wl.catalog, &resolved.schedule);
    assert!(detect_overflows(&topo, &ledger).is_empty());
}

#[test]
fn simulator_flags_phase1_overcommitment() {
    let (topo, wl) = paper_world(5.0, 0.1, 2);
    let model = CostModel::per_hop();
    let ctx = SchedCtx::new(&topo, &model, &wl.catalog);
    let phase1 = ivsp_solve(&ctx, &wl.requests);
    let strict = simulate(&topo, &wl.catalog, &model, &phase1, &SimOptions::strict(&wl.requests));
    assert!(!strict.is_valid(), "phase-1 schedules on 5 GB stores should overflow");
    let lenient = simulate(&topo, &wl.catalog, &model, &phase1, &SimOptions::lenient());
    assert!(lenient.is_valid(), "{:?}", lenient.violations);
}
