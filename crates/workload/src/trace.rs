//! Trace import/export: catalogs and request batches as plain CSV, so
//! synthetic workloads can be archived, inspected, or replaced with real
//! reservation traces.
//!
//! Formats (headered, comma-separated, `#`-prefixed comment lines
//! ignored):
//!
//! ```text
//! # catalog
//! video_id,size_bytes,playback_secs,bandwidth_bps
//! 0,3375000000,5400,625000
//!
//! # requests
//! user_id,video_id,start_secs
//! 17,4,51234.5
//! ```

use std::fmt::Write as _;
use vod_cost_model::{Catalog, Request, RequestBatch, Video, VideoId};
use vod_topology::UserId;

/// Errors raised while parsing a trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The header row is missing or does not match the expected columns.
    BadHeader {
        /// What the parser expected.
        expected: &'static str,
        /// What the file contained.
        got: String,
    },
    /// A data row has the wrong number of fields or an unparsable value.
    BadRow {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        problem: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader { expected, got } => {
                write!(f, "bad header: expected `{expected}`, got `{got}`")
            }
            Self::BadRow { line, problem } => write!(f, "line {line}: {problem}"),
        }
    }
}

impl std::error::Error for TraceError {}

const CATALOG_HEADER: &str = "video_id,size_bytes,playback_secs,bandwidth_bps";
const REQUEST_HEADER: &str = "user_id,video_id,start_secs";

/// Serialise a catalog as CSV.
pub fn catalog_to_csv(catalog: &Catalog) -> String {
    let mut out = String::from(CATALOG_HEADER);
    out.push('\n');
    for v in catalog.iter() {
        let _ = writeln!(out, "{},{},{},{}", v.id.0, v.size, v.playback, v.bandwidth);
    }
    out
}

/// Parse a catalog from CSV. Videos must appear in dense id order.
pub fn catalog_from_csv(text: &str) -> Result<Catalog, TraceError> {
    let mut videos = Vec::new();
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            if line != CATALOG_HEADER {
                return Err(TraceError::BadHeader {
                    expected: CATALOG_HEADER,
                    got: line.to_string(),
                });
            }
            saw_header = true;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(TraceError::BadRow {
                line: i + 1,
                problem: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let parse_f = |s: &str, what: &str| -> Result<f64, TraceError> {
            s.trim().parse().map_err(|_| TraceError::BadRow {
                line: i + 1,
                problem: format!("unparsable {what}: `{s}`"),
            })
        };
        let id: u32 = fields[0].trim().parse().map_err(|_| TraceError::BadRow {
            line: i + 1,
            problem: format!("unparsable video id: `{}`", fields[0]),
        })?;
        if id as usize != videos.len() {
            return Err(TraceError::BadRow {
                line: i + 1,
                problem: format!("video ids must be dense; expected {}, got {id}", videos.len()),
            });
        }
        videos.push(Video::new(
            VideoId(id),
            parse_f(fields[1], "size")?,
            parse_f(fields[2], "playback")?,
            parse_f(fields[3], "bandwidth")?,
        ));
    }
    if !saw_header {
        return Err(TraceError::BadHeader { expected: CATALOG_HEADER, got: String::new() });
    }
    Ok(Catalog::new(videos))
}

/// Serialise a request batch as CSV (video-major order, chronological
/// within each video — the batch's canonical order).
pub fn requests_to_csv(batch: &RequestBatch) -> String {
    let mut out = String::from(REQUEST_HEADER);
    out.push('\n');
    for r in batch.iter() {
        let _ = writeln!(out, "{},{},{}", r.user.0, r.video.0, r.start);
    }
    out
}

/// Parse a request batch from CSV (any row order; the batch re-sorts).
pub fn requests_from_csv(text: &str) -> Result<RequestBatch, TraceError> {
    let mut requests = Vec::new();
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            if line != REQUEST_HEADER {
                return Err(TraceError::BadHeader {
                    expected: REQUEST_HEADER,
                    got: line.to_string(),
                });
            }
            saw_header = true;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(TraceError::BadRow {
                line: i + 1,
                problem: format!("expected 3 fields, got {}", fields.len()),
            });
        }
        let user: u32 = fields[0].trim().parse().map_err(|_| TraceError::BadRow {
            line: i + 1,
            problem: format!("unparsable user id: `{}`", fields[0]),
        })?;
        let video: u32 = fields[1].trim().parse().map_err(|_| TraceError::BadRow {
            line: i + 1,
            problem: format!("unparsable video id: `{}`", fields[1]),
        })?;
        let start: f64 = fields[2].trim().parse().map_err(|_| TraceError::BadRow {
            line: i + 1,
            problem: format!("unparsable start time: `{}`", fields[2]),
        })?;
        if !start.is_finite() {
            return Err(TraceError::BadRow {
                line: i + 1,
                problem: format!("non-finite start time: `{}`", fields[2]),
            });
        }
        requests.push(Request { user: UserId(user), video: VideoId(video), start });
    }
    if !saw_header {
        return Err(TraceError::BadHeader { expected: REQUEST_HEADER, got: String::new() });
    }
    Ok(RequestBatch::new(requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_catalog, generate_requests, CatalogConfig, RequestConfig};
    use vod_topology::builders::{paper_fig4, PaperFig4Config};

    #[test]
    fn catalog_round_trips() {
        let c = generate_catalog(&CatalogConfig::small(25), 3);
        let csv = catalog_to_csv(&c);
        let back = catalog_from_csv(&csv).unwrap();
        assert_eq!(back.len(), c.len());
        for (a, b) in c.iter().zip(back.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.playback, b.playback);
            assert_eq!(a.bandwidth, b.bandwidth);
        }
    }

    #[test]
    fn requests_round_trip() {
        let topo = paper_fig4(&PaperFig4Config::default());
        let c = generate_catalog(&CatalogConfig::small(25), 3);
        let batch = generate_requests(&topo, &c, &RequestConfig::paper(), 5);
        let csv = requests_to_csv(&batch);
        let back = requests_from_csv(&csv).unwrap();
        assert_eq!(back.len(), batch.len());
        let a: Vec<_> = batch.iter().map(|r| (r.user, r.video, r.start)).collect();
        let b: Vec<_> = back.iter().map(|r| (r.user, r.video, r.start)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let csv = format!("# a comment\n\n{REQUEST_HEADER}\n# another\n3,1,42.5\n\n");
        let batch = requests_from_csv(&csv).unwrap();
        assert_eq!(batch.len(), 1);
        let r = batch.iter().next().unwrap();
        assert_eq!((r.user.0, r.video.0, r.start), (3, 1, 42.5));
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = requests_from_csv("user,video,when\n1,2,3\n").unwrap_err();
        assert!(matches!(err, TraceError::BadHeader { .. }));
        let err = catalog_from_csv("").unwrap_err();
        assert!(matches!(err, TraceError::BadHeader { .. }));
    }

    #[test]
    fn bad_rows_report_line_numbers() {
        let err = requests_from_csv(&format!("{REQUEST_HEADER}\n1,2\n")).unwrap_err();
        match err {
            TraceError::BadRow { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        let err = requests_from_csv(&format!("{REQUEST_HEADER}\n1,2,NaN\n")).unwrap_err();
        assert!(matches!(err, TraceError::BadRow { .. }));
        let err = requests_from_csv(&format!("{REQUEST_HEADER}\nx,2,3\n")).unwrap_err();
        assert!(err.to_string().contains("user id"));
    }

    #[test]
    fn sparse_catalog_ids_rejected() {
        let csv = format!("{CATALOG_HEADER}\n1,10,20,30\n");
        let err = catalog_from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("dense"));
    }
}
