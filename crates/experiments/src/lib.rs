//! Experiment harness reproducing the evaluation of Won & Srivastava
//! (HPDC 1997), §5: Figures 5–9 and Table 5.
//!
//! Each experiment sweeps the environment attributes of Table 4 — network
//! charging rate, storage charging rate, intermediate storage size, and
//! Zipf access skew — over the 20-node topology of Fig. 4 (19
//! neighborhoods × 10 users, 500-title catalog), runs the two-phase
//! scheduler, and reports total service cost against the *network only
//! system* baseline.
//!
//! Entry points:
//!
//! * [`figures::fig5`] … [`figures::fig9`] — one function per figure,
//!   returning a [`FigureResult`] of labelled series;
//! * [`table5::run`] — the heat-metric comparison grid behind Table 5;
//! * the `vodx` binary — CLI that renders any experiment as an aligned
//!   text table and CSV files.
//!
//! Determinism: every cell derives its workload from an explicit seed, so
//! reruns reproduce bit-identical numbers. `Preset::Paper` uses the
//! paper's full parameter grids; `Preset::Fast` shrinks them for smoke
//! runs and CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cycles;
mod env;
pub mod ext;
pub mod figures;
mod parallel;
mod report;
pub mod service;
pub mod table5;

pub use env::{evaluate_cell, evaluate_cell_all_metrics, EnvParams, EvalResult, Preset};
pub use parallel::{map_with_mode, parallel_map, ExecMode};
pub use report::{render_csv, render_table, FigureResult, Series};
